//! **Fig. 3** — Comparison of total query and reorganization time enabled
//! by OREO with baselines, for {Static, OREO, Greedy, Regret} ×
//! {Qd-tree, Z-Order} × {TPC-H, TPC-DS, Telemetry}.
//!
//! Like the paper's end-to-end experiment, logical costs drive every
//! decision (α = 80) and the reported numbers are *times*: we measure the
//! substrate's full-scan and reorganization wall-times once per dataset
//! (Table I's methodology) and convert — query time = fraction-read ×
//! full-scan time, reorganization time = measured physical rewrite time.
//!
//! The paper's headline: dynamic reorganization with OREO beats a single
//! optimized static layout by up to 32% in combined time.

use oreo_bench::common::{
    banner, default_config, fig3_grid, json_path_arg, make_stream, run_fig3_policies,
    write_json_report, Json, Scale,
};
use oreo_sim::{default_spec, fmt_f, fmt_pct_change, AsciiTable, PolicySetup};
use oreo_storage::DiskStore;
use std::time::Instant;

/// Measure (full-scan seconds, reorganization seconds) on a physical copy
/// of the bundle's table.
fn measure_substrate(bundle: &oreo_workload::DatasetBundle, k: usize, seed: u64) -> (f64, f64) {
    let dir = std::env::temp_dir().join(format!("oreo-fig3-{}-{}", std::process::id(), seed));
    let spec = default_spec(bundle, k, seed);
    let assignment = spec.assign(&bundle.table);
    let store = DiskStore::create(&dir, &bundle.table, &assignment, k).expect("create store");

    let t0 = Instant::now();
    store.full_scan().expect("scan");
    let scan = t0.elapsed().as_secs_f64();

    let dir2 = dir.join("reorg");
    let t0 = Instant::now();
    let mid = bundle.table.num_rows() as u32 / 2;
    let store2 = store
        .reorganize(&dir2, 2, |_, row| u32::from(row as u32 >= mid))
        .expect("reorg");
    let reorg = t0.elapsed().as_secs_f64();

    store2.destroy().ok();
    store.destroy().ok();
    (scan, reorg)
}

fn main() {
    let scale = Scale::from_args();
    let json_path = json_path_arg();
    banner("Fig. 3: end-to-end query + reorganization time", scale);

    let seed = 3;
    let mut json_rows: Vec<Json> = Vec::new();
    let mut table = AsciiTable::new([
        "dataset",
        "technique",
        "method",
        "query(s)",
        "reorg(s)",
        "total(s)",
        "vs Static",
        "switches",
    ]);

    for (bundle, technique) in fig3_grid(scale, 1) {
        let stream = make_stream(&bundle, scale, 2);
        let config = default_config(seed);
        let (scan_s, reorg_s) = measure_substrate(&bundle, config.partitions, seed);
        let setup = PolicySetup::new(bundle.clone(), technique, config);
        let results = run_fig3_policies(&setup, &stream);
        let static_total =
            results[0].ledger.query_cost * scan_s + results[0].switches as f64 * reorg_s;
        for r in &results {
            let query_s = r.ledger.query_cost * scan_s;
            let reorg_time = r.switches as f64 * reorg_s;
            let total = query_s + reorg_time;
            table.row([
                bundle.name.to_string(),
                technique.label().to_string(),
                r.name.clone(),
                fmt_f(query_s, 1),
                fmt_f(reorg_time, 1),
                fmt_f(total, 1),
                fmt_pct_change(static_total, total),
                r.switches.to_string(),
            ]);
            json_rows.push(Json::obj([
                ("dataset", Json::from(bundle.name)),
                ("technique", Json::from(technique.label())),
                ("method", Json::from(r.name.clone())),
                ("query_s", Json::from(query_s)),
                ("reorg_s", Json::from(reorg_time)),
                ("total_s", Json::from(total)),
                ("query_cost", Json::from(r.ledger.query_cost)),
                ("reorg_cost", Json::from(r.ledger.reorg_cost)),
                ("switches", Json::from(r.switches)),
                ("scan_s", Json::from(scan_s)),
                ("physical_reorg_s", Json::from(reorg_s)),
            ]));
        }
        println!(
            "[{} / {}] substrate: full scan = {:.2}s, physical reorg = {:.2}s (α_measured ≈ {:.0})",
            bundle.name,
            technique.label(),
            scan_s,
            reorg_s,
            reorg_s / scan_s
        );
    }

    println!();
    println!("{}", table.render());
    println!("(paper: OREO improves on Static by up to 32% in combined time; Greedy");
    println!(" reorganizes most aggressively, Regret most conservatively.)");

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("benchmark", Json::from("fig3_end_to_end")),
            ("scale", Json::from(scale.label())),
            ("total_queries", Json::from(scale.total_queries())),
            ("rows", Json::from(scale.rows())),
            ("cells", Json::Arr(json_rows)),
        ]);
        write_json_report(&path, &doc);
    }
}
