//! **Fig. 5** — Impact of the relative reorganization cost α on the
//! overall performance (TPC-H, Qd-tree, logical costs).
//!
//! The paper reports: total gains from dynamic reorganization shrink as
//! reorganization gets more expensive; the number of layout changes falls
//! (35 at α=10 → 18 at α=300) with noticeable drops around α ≈ 80 and 170,
//! which also makes the total cost non-monotone in α.

use oreo_bench::common::{banner, default_config, make_stream, Scale};
use oreo_sim::{fmt_f, run_policy, AsciiTable, PolicySetup, Technique};
use oreo_workload::tpch_bundle;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Fig. 5: impact of reorganization cost α (TPC-H, Qd-tree)",
        scale,
    );

    let bundle = tpch_bundle(scale.rows(), 1);
    let stream = make_stream(&bundle, scale, 2);

    let alphas = [10.0, 50.0, 80.0, 100.0, 150.0, 170.0, 200.0, 250.0, 300.0];
    let mut table = AsciiTable::new([
        "alpha",
        "query cost",
        "reorg cost",
        "total cost",
        "# switches",
    ]);
    for &alpha in &alphas {
        let config = default_config(3).with_alpha(alpha);
        let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config);
        let mut oreo = setup.oreo();
        let r = run_policy(&mut oreo, &stream.queries, 0);
        table.row([
            fmt_f(alpha, 0),
            fmt_f(r.ledger.query_cost, 0),
            fmt_f(r.ledger.reorg_cost, 0),
            fmt_f(r.total(), 0),
            r.switches.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: switches decrease as α grows — 35 at α=10 down to 18 at α=300 —");
    println!(" and the total does not increase monotonically because the algorithm");
    println!(" adapts its strategy at certain thresholds.)");
}
