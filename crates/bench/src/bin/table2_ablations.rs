//! **Table II** — Ablations in logical simulation costs (×10³), all three
//! datasets, Qd-tree layouts:
//!
//! * transition distribution γ ∈ {0, 1, 2, 3} — the paper finds biased
//!   transitions (γ > 0) cut reorganization cost by 17–28% at equal query
//!   cost;
//! * candidate-generation source: sliding window (SW) vs reservoir sample
//!   (RS) vs both — SW wins (RS/-RS+SW raise query and/or reorg costs);
//! * reorganization delay Δ ∈ {0, 40, 80} queries — delay leaves reorg cost
//!   unchanged but raises query cost ~7–12% at Δ = α.
//!
//! Rows in **bold** in the paper are the defaults (γ=1, SW, Δ=0); here the
//! default row is marked with `*`.

use oreo_bench::common::{banner, default_config, make_stream, Scale};
use oreo_core::CandidateSourceConfig;
use oreo_sim::{fmt_f, fmt_pct_change, run_policy, AsciiTable, PolicySetup, Technique};
use oreo_workload::all_bundles;

struct Cell {
    query: f64,
    reorg: f64,
}

fn run_variant(
    bundle: &oreo_workload::DatasetBundle,
    stream: &oreo_workload::QueryStream,
    mutate: impl FnOnce(&mut oreo_core::OreoConfig),
) -> Cell {
    let mut config = default_config(3);
    mutate(&mut config);
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config);
    let mut oreo = setup.oreo();
    let r = run_policy(&mut oreo, &stream.queries, 0);
    Cell {
        query: r.ledger.query_cost,
        reorg: r.ledger.reorg_cost,
    }
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "Table II: γ / SW-vs-RS / reorganization-delay ablations",
        scale,
    );

    let bundles = all_bundles(scale.rows(), 1);
    let streams: Vec<_> = bundles.iter().map(|b| make_stream(b, scale, 2)).collect();
    let names: Vec<&str> = bundles.iter().map(|b| b.name).collect();

    let k3 = |v: f64| fmt_f(v / 1000.0, 2);

    // --------------------------------------------------------------- γ --
    let mut rows: Vec<(String, Vec<Cell>)> = Vec::new();
    for gamma in [1.0, 0.0, 2.0, 3.0] {
        let cells: Vec<Cell> = bundles
            .iter()
            .zip(&streams)
            .map(|(b, s)| run_variant(b, s, |c| c.gamma = gamma))
            .collect();
        let tag = if gamma == 1.0 { "*" } else { "" };
        rows.push((format!("γ={gamma:.0} {tag}").trim().to_string(), cells));
    }
    print_block("Transition distribution (γ)", &names, &rows, k3);

    // ------------------------------------------------------- SW vs RS --
    let mut rows: Vec<(String, Vec<Cell>)> = Vec::new();
    for (label, source) in [
        ("SW *", CandidateSourceConfig::SlidingWindow),
        ("RS", CandidateSourceConfig::Reservoir),
        ("SW+RS", CandidateSourceConfig::Both),
    ] {
        let cells: Vec<Cell> = bundles
            .iter()
            .zip(&streams)
            .map(|(b, s)| run_variant(b, s, |c| c.candidate_source = source))
            .collect();
        rows.push((label.to_string(), cells));
    }
    print_block(
        "Candidate source (sliding window vs reservoir)",
        &names,
        &rows,
        k3,
    );

    // ----------------------------------------------------------- Δ --
    let mut rows: Vec<(String, Vec<Cell>)> = Vec::new();
    for delta in [0u64, 40, 80] {
        let cells: Vec<Cell> = bundles
            .iter()
            .zip(&streams)
            .map(|(b, s)| run_variant(b, s, |c| c.reorg_delay = delta))
            .collect();
        let tag = if delta == 0 { "*" } else { "" };
        rows.push((format!("Δ={delta} {tag}").trim().to_string(), cells));
    }
    print_block(
        "Reorganization delay (Δ queries on the outdated layout)",
        &names,
        &rows,
        k3,
    );

    println!("(paper: γ>0 cuts reorg cost 17–28% at similar query cost; RS raises");
    println!(" query costs up to 22% and reorg costs up to 47%; Δ=α raises query");
    println!(" costs 7–12% while reorg cost is unchanged.)");
}

fn print_block(
    title: &str,
    names: &[&str],
    rows: &[(String, Vec<Cell>)],
    k3: impl Fn(f64) -> String,
) {
    println!("--- {title} ---");
    let mut headers = vec!["variant".to_string()];
    for n in names {
        headers.push(format!("{n} query"));
    }
    for n in names {
        headers.push(format!("{n} reorg"));
    }
    let mut table = AsciiTable::new(headers);
    let base = &rows[0].1;
    for (label, cells) in rows {
        let mut row = vec![label.clone()];
        for (i, c) in cells.iter().enumerate() {
            let delta = fmt_pct_change(base[i].query, c.query);
            row.push(format!("{} ({delta})", k3(c.query)));
        }
        for (i, c) in cells.iter().enumerate() {
            let delta = fmt_pct_change(base[i].reorg, c.reorg);
            row.push(format!("{} ({delta})", k3(c.reorg)));
        }
        table.row(row);
    }
    println!("{}", table.render());
}
