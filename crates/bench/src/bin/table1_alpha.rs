//! **Table I** — Relative cost of reorganization over query (α), measured
//! physically on the storage substrate.
//!
//! The paper measures, for Parquet files of 16 MB – 4 GB on local disk, the
//! time of a full-scan query versus a reorganization (read partitions,
//! update the BID column, repartition by BID, compress + write), finding
//! α ∈ [60×, 100×] — the basis of the α = 80 default.
//!
//! We do the same on our own columnar store: tables sized to hit target
//! on-disk footprints, scanned in full and physically reorganized (read →
//! re-route → regroup → compress + write). Absolute times differ from the
//! paper's Spark setup; the point is the *ratio* and its rough stability
//! across file sizes. Default sweeps 16–256 MB; pass `--max-mb 1024` (or
//! more) to extend.
//!
//! With `--tiered` the rewrite goes through the **same code path the
//! serving engine uses**: a `TieredStore` generation publish (re-route +
//! regroup in memory, then encode + write + fsync + atomic rename into
//! `gen-N/`), and the scan reads the committed generation directory back
//! through `DiskStore::open`. That makes this offline α and the engine's
//! in-vivo empirical α (`serve_throughput --tiered`) the same experiment —
//! the table is already resident for the engine, so the tiered rewrite
//! skips the initial disk read and its α is the serving-path lower bound.
//!
//! Flags: `--max-mb <n>`, `--tiered`, `--json <path>`.

use oreo_bench::common::{json_path_arg, write_json_report, Json};
use oreo_sim::{fmt_f, AsciiTable};
use oreo_storage::{DiskStore, Table, TableSnapshot, TieredStore};
use oreo_workload::tpch;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

fn parse_max_mb() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--max-mb")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Estimate encoded bytes per row from a small probe table.
fn bytes_per_row() -> f64 {
    let probe = tpch::tpch_table(20_000, 7);
    let bytes = oreo_storage::format::encode_partition(&probe).len();
    bytes as f64 / probe.num_rows() as f64
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oreo-table1-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The Z-order target layout of the rewrite (shipdate × quantity × price —
/// what a real `OPTIMIZE ZORDER BY` does).
fn zorder_spec(table: &Table, k: usize) -> oreo_layout::ZOrderLayout {
    let s = table.schema();
    let zcols = [
        s.col("l_shipdate").expect("shipdate"),
        s.col("l_quantity").expect("qty"),
        s.col("l_extendedprice").expect("price"),
    ];
    oreo_layout::ZOrderLayout::from_sample(
        &table.sample(&mut rand::rngs::StdRng::seed_from_u64(5), 10_000),
        &zcols,
        8,
        k,
    )
}

/// The initial layout both modes rewrite *from*: arrival order (row-id
/// ranges), `k` equal partitions.
fn arrival_assignment(table: &Table, k: usize) -> Vec<u32> {
    let n = table.num_rows() as u32;
    let per = n.div_ceil(k as u32).max(1);
    (0..n).map(|r| (r / per).min(k as u32 - 1)).collect()
}

/// One measurement row: scan and reorganization seconds plus byte volumes.
struct Measurement {
    scan: f64,
    reorg: f64,
    /// Disk-write portion of the rewrite (tiered mode only; part of
    /// `reorg`).
    write: f64,
    bytes: u64,
}

/// Classic Table I: `DiskStore` full scan vs `DiskStore::reorganize`
/// (read → re-route → regroup → compress + write into a fresh directory).
fn measure_diskstore(table: &Table, k: usize, runs: usize) -> Measurement {
    let assignment = arrival_assignment(table, k);
    let dir = tmpdir(&format!("{}", table.num_rows()));
    let store = DiskStore::create(&dir, table, &assignment, k).expect("create");
    let bytes = store.total_bytes();

    // full-scan timing (average of `runs`)
    let mut scan = 0.0;
    for _ in 0..runs {
        let t0 = Instant::now();
        store.full_scan().expect("scan");
        scan += t0.elapsed().as_secs_f64();
    }
    scan /= runs as f64;

    let zorder = zorder_spec(table, k);
    let dir2 = tmpdir(&format!("{}-reorg", table.num_rows()));
    let t0 = Instant::now();
    let store2 = store
        .reorganize(&dir2, k, |t, row| {
            oreo_layout::LayoutSpec::route(&zorder, t, row)
        })
        .expect("reorg");
    let reorg = t0.elapsed().as_secs_f64();

    store2.destroy().ok();
    store.destroy().ok();
    Measurement {
        scan,
        reorg,
        write: 0.0,
        bytes,
    }
}

/// Serving-path Table I: the rewrite is a `TieredStore` generation publish
/// (the engine's aside-rewrite code path), the scan reads the committed
/// generation back from disk.
fn measure_tiered(table: &Table, k: usize, runs: usize) -> Measurement {
    let assignment = arrival_assignment(table, k);
    let root = tmpdir(&format!("{}-tiered", table.num_rows()));
    let _ = std::fs::remove_dir_all(&root);
    let mut initial = TableSnapshot::build(table, &assignment, k, 0, "arrival");
    let (store, _receipt) = TieredStore::create(&root, &mut initial).expect("create tiered");
    // Partition-file bytes only (`total_bytes` is the sum of the committed
    // `part-*.oreo` sizes after create), so the size column stays
    // comparable with the DiskStore mode — the generation's row-id
    // sidecars and manifest are rewrite overhead, not table data.
    let bytes = initial.total_bytes();

    // full-scan timing against the committed generation directory
    let gen_dir = store.current().dir().to_owned();
    let disk = DiskStore::open(&gen_dir, table.schema()).expect("open generation");
    let mut scan = 0.0;
    for _ in 0..runs {
        let t0 = Instant::now();
        disk.full_scan().expect("scan");
        scan += t0.elapsed().as_secs_f64();
    }
    scan /= runs as f64;

    // the engine's rewrite: re-route + regroup (materialize) + publish
    // (encode + write + fsync + atomic rename)
    let zorder = zorder_spec(table, k);
    let t0 = Instant::now();
    let mut assignment2 = Vec::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        assignment2.push(oreo_layout::LayoutSpec::route(&zorder, table, row));
    }
    let mut next = TableSnapshot::build(table, &assignment2, k, 1, "zorder");
    let receipt = store.publish(&mut next).expect("publish");
    let reorg = t0.elapsed().as_secs_f64();

    drop(initial);
    drop(next);
    drop(store);
    let _ = std::fs::remove_dir_all(&root);
    Measurement {
        scan,
        reorg,
        write: receipt.wall.as_secs_f64(),
        bytes,
    }
}

fn main() {
    let max_mb = parse_max_mb();
    let tiered = std::env::args().any(|a| a == "--tiered");
    let json_path = json_path_arg();
    println!("== Table I: measured relative reorganization cost α ==");
    let bpr = bytes_per_row();
    println!(
        "substrate: TPC-H-shaped table, ~{bpr:.0} encoded bytes/row, rewrite path: {}\n",
        if tiered {
            "TieredStore generation publish (the serving engine's)"
        } else {
            "DiskStore reorganize (read → re-route → regroup → write)"
        }
    );

    let sizes_mb: Vec<u64> = [16u64, 64, 256, 1024, 4096]
        .into_iter()
        .filter(|&s| s <= max_mb)
        .collect();

    let mut table = AsciiTable::new([
        "target size",
        "actual size",
        "rows",
        "query (s)",
        "reorg (s)",
        "write (s)",
        "alpha",
    ]);
    let mut json_rows = Vec::new();
    for &mb in &sizes_mb {
        let rows = ((mb * 1024 * 1024) as f64 / bpr) as usize;
        let data = tpch::tpch_table(rows, 11);
        let k = 8;
        let runs = if mb <= 64 { 3 } else { 1 };
        let m = if tiered {
            measure_tiered(&data, k, runs)
        } else {
            measure_diskstore(&data, k, runs)
        };
        let alpha = m.reorg / m.scan;
        table.row([
            format!("{mb} MB"),
            format!("{:.0} MB", m.bytes as f64 / 1024.0 / 1024.0),
            rows.to_string(),
            fmt_f(m.scan, 2),
            fmt_f(m.reorg, 2),
            if tiered {
                fmt_f(m.write, 2)
            } else {
                "-".into()
            },
            fmt_f(alpha, 1),
        ]);
        json_rows.push(Json::obj([
            ("target_mb", Json::from(mb)),
            ("actual_bytes", Json::from(m.bytes)),
            ("rows", Json::from(rows)),
            ("scan_s", Json::from(m.scan)),
            ("reorg_s", Json::from(m.reorg)),
            (
                "write_s",
                if tiered {
                    Json::from(m.write)
                } else {
                    Json::Null
                },
            ),
            ("alpha", Json::from(alpha)),
        ]));
    }
    println!("{}", table.render());
    println!("(paper: α ranged from 60× to 100× across 16 MB – 4 GB files; our");
    println!(" substrate trades Spark's JVM overheads for tighter I/O, so absolute");
    println!(" times differ but the reorganization-to-scan ratio is the quantity");
    println!(" that feeds the cost model.)");
    if tiered {
        println!("(tiered: the rewrite is the engine's generation publish — the table");
        println!(" is memory-resident for the serving path, so no initial disk read;");
        println!(" compare with serve_throughput --tiered, which measures the same");
        println!(" publish under live queries.)");
    }

    if let Some(path) = json_path {
        let doc = Json::obj([
            ("benchmark", Json::from("table1_alpha")),
            (
                "rewrite_path",
                Json::from(if tiered { "tiered" } else { "diskstore" }),
            ),
            ("max_mb", Json::from(max_mb)),
            ("bytes_per_row", Json::from(bpr)),
            ("rows", Json::Arr(json_rows)),
        ]);
        write_json_report(&path, &doc);
    }
}
