//! **Table I** — Relative cost of reorganization over query (α), measured
//! physically on the storage substrate.
//!
//! The paper measures, for Parquet files of 16 MB – 4 GB on local disk, the
//! time of a full-scan query versus a reorganization (read partitions,
//! update the BID column, repartition by BID, compress + write), finding
//! α ∈ [60×, 100×] — the basis of the α = 80 default.
//!
//! We do the same on our own columnar store: tables sized to hit target
//! on-disk footprints, scanned in full and physically reorganized (read →
//! re-route → regroup → compress + write). Absolute times differ from the
//! paper's Spark setup; the point is the *ratio* and its rough stability
//! across file sizes. Default sweeps 16–256 MB; pass `--max-mb 1024` (or
//! more) to extend.

use oreo_sim::{fmt_f, AsciiTable};
use oreo_storage::{DiskStore, Table};
use oreo_workload::tpch;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

fn parse_max_mb() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--max-mb")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Estimate encoded bytes per row from a small probe table.
fn bytes_per_row() -> f64 {
    let probe = tpch::tpch_table(20_000, 7);
    let bytes = oreo_storage::format::encode_partition(&probe).len();
    bytes as f64 / probe.num_rows() as f64
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oreo-table1-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn measure(table: &Table, k: usize, runs: usize) -> (f64, f64, u64) {
    // initial layout: arrival order (row-id ranges)
    let n = table.num_rows() as u32;
    let per = n.div_ceil(k as u32).max(1);
    let assignment: Vec<u32> = (0..n).map(|r| (r / per).min(k as u32 - 1)).collect();
    let dir = tmpdir(&format!("{n}"));
    let store = DiskStore::create(&dir, table, &assignment, k).expect("create");
    let bytes = store.total_bytes();

    // full-scan timing (average of `runs`)
    let mut scan = 0.0;
    for _ in 0..runs {
        let t0 = Instant::now();
        store.full_scan().expect("scan");
        scan += t0.elapsed().as_secs_f64();
    }
    scan /= runs as f64;

    // reorganization timing: read all, re-route every row through a
    // Z-order curve (shipdate × quantity × discount — what a real
    // `OPTIMIZE ZORDER BY` does), regroup, compress + write + sync
    let s = table.schema();
    let zcols = [
        s.col("l_shipdate").expect("shipdate"),
        s.col("l_quantity").expect("qty"),
        s.col("l_extendedprice").expect("price"),
    ];
    let zorder = oreo_layout::ZOrderLayout::from_sample(
        &table.sample(&mut rand::rngs::StdRng::seed_from_u64(5), 10_000),
        &zcols,
        8,
        k,
    );
    let dir2 = tmpdir(&format!("{n}-reorg"));
    let t0 = Instant::now();
    let store2 = store
        .reorganize(&dir2, k, |t, row| {
            oreo_layout::LayoutSpec::route(&zorder, t, row)
        })
        .expect("reorg");
    let reorg = t0.elapsed().as_secs_f64();

    store2.destroy().ok();
    store.destroy().ok();
    (scan, reorg, bytes)
}

fn main() {
    let max_mb = parse_max_mb();
    println!("== Table I: measured relative reorganization cost α ==");
    let bpr = bytes_per_row();
    println!("substrate: TPC-H-shaped table, ~{bpr:.0} encoded bytes/row\n");

    let sizes_mb: Vec<u64> = [16u64, 64, 256, 1024, 4096]
        .into_iter()
        .filter(|&s| s <= max_mb)
        .collect();

    let mut table = AsciiTable::new([
        "target size",
        "actual size",
        "rows",
        "query (s)",
        "reorg (s)",
        "alpha",
    ]);
    for &mb in &sizes_mb {
        let rows = ((mb * 1024 * 1024) as f64 / bpr) as usize;
        let data = tpch::tpch_table(rows, 11);
        let k = 8;
        let runs = if mb <= 64 { 3 } else { 1 };
        let (scan, reorg, bytes) = measure(&data, k, runs);
        table.row([
            format!("{mb} MB"),
            format!("{:.0} MB", bytes as f64 / 1024.0 / 1024.0),
            rows.to_string(),
            fmt_f(scan, 2),
            fmt_f(reorg, 2),
            fmt_f(reorg / scan, 1),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: α ranged from 60× to 100× across 16 MB – 4 GB files; our");
    println!(" substrate trades Spark's JVM overheads for tighter I/O, so absolute");
    println!(" times differ but the reorganization-to-scan ratio is the quantity");
    println!(" that feeds the cost model.)");
}
