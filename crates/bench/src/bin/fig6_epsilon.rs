//! **Fig. 6** — Impact of the distance threshold ε for admitting new
//! layouts (TPC-H, Qd-tree, logical costs).
//!
//! The paper reports: as ε grows the dynamic state space shrinks and query
//! cost rises slightly, but overall performance is not very sensitive to ε
//! — defaults are easy to pick.

use oreo_bench::common::{banner, default_config, make_stream, Scale};
use oreo_sim::{fmt_f, run_policy, AsciiTable, PolicySetup, Technique};
use oreo_workload::tpch_bundle;

fn main() {
    let scale = Scale::from_args();
    banner(
        "Fig. 6: impact of admission threshold ε (TPC-H, Qd-tree)",
        scale,
    );

    let bundle = tpch_bundle(scale.rows(), 1);
    let stream = make_stream(&bundle, scale, 2);

    let epsilons = [0.0, 0.02, 0.04, 0.08, 0.16, 0.32];
    let mut table = AsciiTable::new([
        "epsilon",
        "peak |S|",
        "admitted",
        "rejected",
        "query cost",
        "reorg cost",
        "total cost",
        "# switches",
    ]);
    for &epsilon in &epsilons {
        let config = default_config(3).with_epsilon(epsilon);
        let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config);
        let mut oreo = setup.oreo();
        let r = run_policy(&mut oreo, &stream.queries, 0);
        let stats = oreo.framework().manager_stats();
        table.row([
            fmt_f(epsilon, 2),
            stats.peak_states.to_string(),
            stats.admitted.to_string(),
            stats.rejected.to_string(),
            fmt_f(r.ledger.query_cost, 0),
            fmt_f(r.ledger.reorg_cost, 0),
            fmt_f(r.total(), 0),
            r.switches.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: larger ε shrinks the state space with a slight query-cost");
    println!(" increase; the framework is not very sensitive to the choice of ε.)");
}
