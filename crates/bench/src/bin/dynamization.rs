//! **Dynamization** — measured write amplification of the delta-merge
//! policies on an adversarial insert stream, against the k-binomial
//! transform's competitive bound (Mathieu et al., arXiv:2011.02615).
//!
//! The stream is the worst case for any merging policy: `m` single-row
//! append batches, so every merge decision rewrites previously written
//! rows. The harness drives a bare [`DeltaBuffer`] (no engine, no queries)
//! under each [`MergePolicy`], sums the per-batch `rows_written` receipts,
//! and reports
//!
//! * measured WA = total rows written / rows ingested,
//! * the policy's guarantee: `k·m^{1/k} + 1` for k-binomial,
//!   `(m+1)/2 + 1` for the naive full merge,
//! * the final run count (k-binomial keeps ≤ k runs live; naive keeps 1).
//!
//! The run **asserts** that every policy's measured WA is within its bound
//! and that k-binomial beats the naive merge — the second worst-case
//! guarantee PR 9 adds next to the 2·H(n) layout bound — then writes
//! `BENCH_dynamization.json` (override with `--json <path>`). `--quick`
//! shrinks the stream; a release-profile mirror of the bound assertion
//! lives in `tests/dynamization.rs`.

use oreo_bench::common::{json_path_arg, write_json_report, Json, Scale};
use oreo_query::{ColumnType, Scalar, Schema};
use oreo_storage::{DeltaBuffer, IngestOp, MergePolicy};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Adversarial batches per policy run.
fn batches(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 512,
        Scale::Full => 4_096,
    }
}

/// One policy's measured run.
struct PolicyRun {
    label: String,
    rows_ingested: u64,
    rows_written: u64,
    wa: f64,
    bound: f64,
    within_bound: bool,
    final_runs: usize,
    merges: u64,
    elapsed_s: f64,
}

/// Drive `m` single-row append batches through a fresh buffer under
/// `policy`.
fn drive(policy: MergePolicy, m: u64) -> PolicyRun {
    let schema = Arc::new(Schema::from_pairs([
        ("ts", ColumnType::Int),
        ("v", ColumnType::Int),
    ]));
    let mut buf = DeltaBuffer::new(Arc::clone(&schema), 0, policy);
    let started = Instant::now();
    let mut rows_written = 0u64;
    let mut merges = 0u64;
    for i in 0..m as i64 {
        let receipt = buf
            .apply(&[IngestOp::Append {
                values: vec![Scalar::Int(i), Scalar::Int((i * 31) % 1_000)],
            }])
            .expect("append batch");
        rows_written += receipt.rows_written;
        merges += receipt.merged_runs as u64;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let wa = rows_written as f64 / m as f64;
    let bound = policy.write_amplification_bound(m);
    let label = match policy {
        MergePolicy::NaiveFullMerge => "naive-full-merge".to_string(),
        MergePolicy::KBinomial { k } => format!("kbinomial-{k}"),
    };
    PolicyRun {
        label,
        rows_ingested: m,
        rows_written,
        wa,
        bound,
        within_bound: wa <= bound,
        final_runs: buf.runs().count(),
        merges,
        elapsed_s,
    }
}

fn main() {
    let scale = Scale::from_args();
    let m = batches(scale);

    println!("== Dynamization: write amplification vs the k-binomial bound ==");
    println!(
        "scale: {} ({m} single-row adversarial append batches per policy)",
        scale.label(),
    );
    println!();

    let policies = [
        MergePolicy::NaiveFullMerge,
        MergePolicy::KBinomial { k: 2 },
        MergePolicy::KBinomial { k: 3 },
        MergePolicy::KBinomial { k: 4 },
    ];
    let runs: Vec<PolicyRun> = policies.iter().map(|&p| drive(p, m)).collect();

    for r in &runs {
        println!(
            "[{:>16}] WA {:>7.2} (bound {:>7.2}) — {:>8} rows written, {} merges, \
             {} final run(s), {:.3}s — {}",
            r.label,
            r.wa,
            r.bound,
            r.rows_written,
            r.merges,
            r.final_runs,
            r.elapsed_s,
            if r.within_bound {
                "WITHIN BOUND"
            } else {
                "EXCEEDS BOUND"
            },
        );
    }
    println!();

    let naive = &runs[0];
    let kbin = &runs[1];
    println!(
        "k-binomial (k=2) writes {:.1}% of the naive merge's rows on the same stream",
        kbin.rows_written as f64 / naive.rows_written as f64 * 100.0,
    );

    let doc = Json::obj([
        ("benchmark", Json::from("dynamization")),
        ("scale", Json::from(scale.label())),
        ("batches", Json::from(m)),
        (
            "policies",
            Json::Arr(
                runs.iter()
                    .map(|r| {
                        Json::obj([
                            ("policy", Json::from(r.label.clone())),
                            ("rows_ingested", Json::from(r.rows_ingested)),
                            ("rows_written", Json::from(r.rows_written)),
                            ("write_amplification", Json::from(r.wa)),
                            ("bound", Json::from(r.bound)),
                            ("within_bound", Json::from(r.within_bound)),
                            ("final_runs", Json::from(r.final_runs)),
                            ("merges", Json::from(r.merges)),
                            ("elapsed_s", Json::from(r.elapsed_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = json_path_arg().unwrap_or_else(|| PathBuf::from("BENCH_dynamization.json"));
    write_json_report(&path, &doc);

    // The second worst-case guarantee, gated: every policy within its own
    // bound, and the transform strictly better than naive merging.
    for r in &runs {
        assert!(
            r.within_bound,
            "{}: measured WA {:.2} exceeds its guarantee {:.2}",
            r.label, r.wa, r.bound
        );
    }
    assert!(
        kbin.rows_written < naive.rows_written,
        "k-binomial must beat the naive full merge on the adversarial stream \
         ({} vs {} rows written)",
        kbin.rows_written,
        naive.rows_written
    );
    println!("dynamization ok: all policies within their WA guarantees");
}
