//! **Serving throughput** — the concurrent engine under load: scan
//! queries/sec and p50/p99 latency at 1/2/4/8 worker threads, with and
//! without concurrent background reorganization, on the TPC-H workload.
//!
//! This is the experiment the paper *cannot* run in its simulator: queries
//! keep arriving while a reorganization is in flight, and the delay Δ of
//! §VI-D5 is a **measured** window (wall-clock and queries served during
//! the switch), not a configured constant.
//!
//! With `--tiered` the engine serves through the disk tier
//! (`TieredStore`): every publish persists a `gen-N/` generation directory
//! (write + fsync + atomic rename) before the snapshot-pointer swap, and
//! the same run then reports an **empirical α** — the measured
//! aside-rewrite cost over the extrapolated full-scan cost — next to the
//! measured Δ. One `--tiered --json` run emits both numbers from one query
//! stream, unifying Table I's offline α measurement with the engine's Δ.
//!
//! The harness also replays the same stream through a single-worker FIFO
//! engine and through `oreo-sim`'s sequential OREO policy, asserting the
//! two ledgers are *identical* — concurrency (and the disk tier) changes
//! the serving plane, never the bookkeeping.
//!
//! Tiered scans travel through a fixed-capacity **buffer pool**
//! (`--buffer-pool-mb N`, default 64): partition pages are fetched from
//! disk on misses and served from memory on hits, the run reports
//! hit/miss/eviction counters plus the cold-vs-warm α̂ split (α̂ from
//! measured disk throughput vs. from pool-hit throughput), and the JSON
//! report carries hit-rate and qps per cell so a capacity sweep plots
//! qps-vs-capacity directly.
//!
//! Flags: `--quick` (reduced scale), `--tiered` (disk-tiered serving),
//! `--buffer-pool-mb <n>` (tiered page-cache capacity), `--json <path>`
//! (machine-readable report for cross-PR trajectories).

use oreo_bench::common::{
    default_config, json_path_arg, make_stream, write_json_report, Json, Scale,
};
use oreo_engine::{Engine, EngineConfig, EngineStats, ServeMode};
use oreo_sim::{
    default_spec, fmt_f, make_generator, run_policy, PolicySetup, Technique, ThroughputReport,
};
use oreo_workload::{tpch_bundle, QueryStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Queries per serving cell (smaller than the figure harnesses: every cell
/// replays the stream once per worker count × reorg mode).
fn serving_queries(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 2_000,
        Scale::Full => 10_000,
    }
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A fresh generation root for one tiered cell (removed after the run).
fn cell_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("oreo-serve-{}-{tag}", std::process::id()))
}

fn serve_mode(tiered: bool, tag: &str) -> ServeMode {
    if tiered {
        let root = cell_root(tag);
        let _ = std::fs::remove_dir_all(&root);
        ServeMode::Tiered { root }
    } else {
        ServeMode::Memory
    }
}

/// Remove a tiered cell's generation root once the engine is done with it.
fn cleanup(mode: &ServeMode) {
    if let ServeMode::Tiered { root } = mode {
        let _ = std::fs::remove_dir_all(root);
    }
}

/// Parse `--buffer-pool-mb <n>` (default 64 MiB).
fn parse_pool_mb() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--buffer-pool-mb")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn run_cell(
    bundle: &oreo_workload::DatasetBundle,
    stream: &QueryStream,
    workers: usize,
    background_reorg: bool,
    tiered: bool,
    pool_mb: u64,
    seed: u64,
) -> (ThroughputReport, EngineStats) {
    let config = default_config(seed);
    let initial = default_spec(bundle, config.partitions, config.seed);
    let generator = make_generator(Technique::QdTree, bundle);
    let mode = serve_mode(tiered, &format!("w{workers}-r{background_reorg}"));
    let engine = Engine::start(
        Arc::clone(&bundle.table),
        initial,
        generator,
        config,
        EngineConfig::default()
            .with_workers(workers)
            .with_background_reorg(background_reorg)
            .with_mode(mode.clone())
            .with_buffer_pool_bytes(pool_mb * 1024 * 1024),
    );
    let started = Instant::now();
    for q in &stream.queries {
        engine.submit(q.clone());
    }
    engine.drain();
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.shutdown();
    cleanup(&mode);
    for e in &stats.tiered_errors {
        eprintln!("[workers={workers}] disk-tier degradation: {e}");
    }
    let report = ThroughputReport {
        label: if background_reorg {
            "reorg on".into()
        } else {
            "reorg off".into()
        },
        serve_mode: stats.mode.label().into(),
        workers,
        queries: stats.queries,
        elapsed_s: elapsed,
        qps: stats.queries as f64 / elapsed,
        p50_us: stats.latency.p50_us,
        p99_us: stats.latency.p99_us,
        mean_us: stats.latency.mean_us,
        switches: stats.switches,
        reorgs_completed: stats.snapshots_published,
        mean_delta_queries: stats.mean_delta_queries().unwrap_or(0.0),
        mean_delta_s: stats.mean_delta_seconds().unwrap_or(0.0),
        bytes_scanned: stats.bytes_scanned,
        reorg_bytes_written: stats.reorg_bytes_written(),
        alpha_empirical: stats.empirical_alpha().unwrap_or(0.0),
        alpha_cold: stats.alpha_cold().unwrap_or(0.0),
        alpha_warm: stats.alpha_warm().unwrap_or(0.0),
        pool_hits: stats.pool.map_or(0, |p| p.hits),
        pool_misses: stats.pool.map_or(0, |p| p.misses),
        pool_evictions: stats.pool.map_or(0, |p| p.evictions),
        pool_hit_rate: stats.pool_hit_rate(),
        io_cold_bytes: stats.io_cold_bytes,
        io_cached_bytes: stats.io_cached_bytes,
        chunks_evaluated: stats.chunks_evaluated,
        rows_short_circuited: stats.rows_short_circuited,
        total_cost: stats.ledger.total(),
    };
    (report, stats)
}

fn main() {
    let scale = Scale::from_args();
    let tiered = std::env::args().any(|a| a == "--tiered");
    let pool_mb = parse_pool_mb();
    let json_path = json_path_arg();
    let seed = 3;
    let queries = serving_queries(scale);

    println!("== Serving throughput: concurrent engine vs worker count ==");
    println!(
        "scale: {} ({} rows, {} queries/cell, serve mode: {}, {} hardware threads available)",
        scale.label(),
        scale.rows(),
        queries,
        if tiered {
            format!("tiered, {pool_mb} MiB buffer pool")
        } else {
            "memory".into()
        },
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );
    println!();

    let bundle = tpch_bundle(scale.rows(), 1);
    let mut stream = make_stream(&bundle, scale, 2);
    stream.queries.truncate(queries);

    // Ledger parity: sequential simulator vs single-worker FIFO engine —
    // in the *same* serve mode as the measured cells, so the acceptance
    // check covers the tiered path too.
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, default_config(seed));
    let mut sequential = setup.oreo();
    let sim_result = run_policy(&mut sequential, &stream.queries, 0);
    let parity_mode = serve_mode(tiered, "parity");
    let parity_engine = Engine::start(
        Arc::clone(&bundle.table),
        default_spec(&bundle, default_config(seed).partitions, seed),
        make_generator(Technique::QdTree, &bundle),
        default_config(seed),
        EngineConfig::sequential_parity()
            .with_mode(parity_mode.clone())
            .with_buffer_pool_bytes(pool_mb * 1024 * 1024),
    );
    for q in &stream.queries {
        parity_engine.submit(q.clone());
    }
    parity_engine.drain();
    let parity = parity_engine.shutdown();
    cleanup(&parity_mode);
    let ledgers_match =
        parity.ledger == sim_result.ledger && parity.switches == sim_result.switches;
    println!(
        "ledger parity vs oreo-sim sequential OREO ({} FIFO): {} (engine total {:.2}, \
         sim total {:.2}, switches {} / {})",
        parity.mode.label(),
        if ledgers_match { "EXACT" } else { "MISMATCH" },
        parity.ledger.total(),
        sim_result.ledger.total(),
        parity.switches,
        sim_result.switches,
    );
    assert!(
        ledgers_match,
        "single-threaded engine ledger must replay oreo-sim exactly"
    );
    println!();

    let mut reports: Vec<ThroughputReport> = Vec::new();
    let mut alpha_cells: Vec<(usize, EngineStats)> = Vec::new();
    for &workers in &WORKER_COUNTS {
        for reorg in [true, false] {
            let (report, stats) = run_cell(&bundle, &stream, workers, reorg, tiered, pool_mb, seed);
            println!(
                "[workers={} {}] {:>7} qps, p50 {:>6} µs, p99 {:>7} µs, {} switches, {} reorgs, \
                 mean Δ = {} queries / {}s",
                report.workers,
                report.label,
                fmt_f(report.qps, 0),
                fmt_f(report.p50_us, 0),
                fmt_f(report.p99_us, 0),
                report.switches,
                report.reorgs_completed,
                fmt_f(report.mean_delta_queries, 1),
                fmt_f(report.mean_delta_s, 3),
            );
            if reorg {
                debug_assert_eq!(stats.snapshots_published, stats.switches);
                alpha_cells.push((workers, stats));
            }
            reports.push(report);
        }
    }

    println!();
    println!("{}", ThroughputReport::render_table(&reports));

    // The unified measurement: α and Δ as observables of the same stream.
    if tiered {
        for (workers, stats) in &alpha_cells {
            let est = stats.alpha_estimator();
            match (stats.empirical_alpha(), stats.mean_delta_queries()) {
                (Some(alpha), Some(delta_q)) => println!(
                    "[workers={workers}] empirical α = {:.1} (mean rewrite {:.4}s over \
                     extrapolated full scan {:.4}s, {} bytes/rewrite) — same stream's \
                     measured Δ = {:.1} queries / {:.4}s",
                    alpha,
                    est.mean_reorg_seconds().unwrap_or(0.0),
                    est.full_scan_seconds().unwrap_or(0.0),
                    fmt_f(est.mean_reorg_bytes().unwrap_or(0.0), 0),
                    delta_q,
                    stats.mean_delta_seconds().unwrap_or(0.0),
                ),
                _ => println!(
                    "[workers={workers}] empirical α not measurable (no completed rewrite)"
                ),
            }
            let pool = stats.pool.unwrap_or_default();
            println!(
                "[workers={workers}]   buffer pool: {} hits / {} misses ({:.1}% hit rate), \
                 {} evictions; scan bytes cold {} / cached {}; α̂ cold = {}, α̂ warm = {}",
                pool.hits,
                pool.misses,
                stats.pool_hit_rate() * 100.0,
                pool.evictions,
                stats.io_cold_bytes,
                stats.io_cached_bytes,
                stats.alpha_cold().map_or("-".into(), |a| fmt_f(a, 1)),
                stats.alpha_warm().map_or("-".into(), |a| fmt_f(a, 1)),
            );
        }
        println!();
    }

    let cell = |workers: usize, label: &str| {
        reports
            .iter()
            .find(|r| r.workers == workers && r.label == label)
            .expect("cell present")
    };
    let speedup_4 = cell(4, "reorg on").speedup_over(cell(1, "reorg on"));
    let speedup_8 = cell(8, "reorg on").speedup_over(cell(1, "reorg on"));
    println!(
        "scan throughput scaling (reorg on): 1→4 workers = {:.2}x, 1→8 workers = {:.2}x",
        speedup_4, speedup_8
    );
    // Scan work runs lock-free, so the scaling target is >2x from 1→4
    // workers on a host that actually has the cores. Enforcing a perf
    // property on shared/undersized CI runners is flaky by construction,
    // so the hard check is opt-in: OREO_ENFORCE_SCALING=1.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let enforce = std::env::var_os("OREO_ENFORCE_SCALING").is_some_and(|v| v == "1");
    if enforce && hw >= 4 {
        assert!(
            speedup_4 > 2.0,
            "expected >2x scan throughput from 1→4 workers, measured {speedup_4:.2}x"
        );
    } else if hw < 4 {
        println!(
            "(only {hw} hardware thread(s) available — the >2x 1→4 scaling target \
             needs a multi-core host)"
        );
    } else {
        println!("(set OREO_ENFORCE_SCALING=1 to fail the run if 1→4 scaling is ≤2x)");
    }

    if let Some(path) = json_path {
        let rows = reports
            .iter()
            .map(|r| {
                Json::obj([
                    ("mode", Json::from(r.label.clone())),
                    ("serve_mode", Json::from(r.serve_mode.clone())),
                    ("workers", Json::from(r.workers)),
                    ("queries", Json::from(r.queries)),
                    ("elapsed_s", Json::from(r.elapsed_s)),
                    ("qps", Json::from(r.qps)),
                    ("p50_us", Json::from(r.p50_us)),
                    ("p99_us", Json::from(r.p99_us)),
                    ("mean_us", Json::from(r.mean_us)),
                    ("switches", Json::from(r.switches)),
                    ("reorgs_completed", Json::from(r.reorgs_completed)),
                    ("mean_delta_queries", Json::from(r.mean_delta_queries)),
                    ("mean_delta_s", Json::from(r.mean_delta_s)),
                    ("bytes_scanned", Json::from(r.bytes_scanned)),
                    ("reorg_bytes_written", Json::from(r.reorg_bytes_written)),
                    (
                        "alpha_empirical",
                        if r.alpha_empirical > 0.0 {
                            Json::from(r.alpha_empirical)
                        } else {
                            Json::Null
                        },
                    ),
                    (
                        "alpha_cold",
                        if r.alpha_cold > 0.0 {
                            Json::from(r.alpha_cold)
                        } else {
                            Json::Null
                        },
                    ),
                    (
                        "alpha_warm",
                        if r.alpha_warm > 0.0 {
                            Json::from(r.alpha_warm)
                        } else {
                            Json::Null
                        },
                    ),
                    ("pool_hits", Json::from(r.pool_hits)),
                    ("pool_misses", Json::from(r.pool_misses)),
                    ("pool_evictions", Json::from(r.pool_evictions)),
                    ("pool_hit_rate", Json::from(r.pool_hit_rate)),
                    ("io_cold_bytes", Json::from(r.io_cold_bytes)),
                    ("io_cached_bytes", Json::from(r.io_cached_bytes)),
                    ("chunks_evaluated", Json::from(r.chunks_evaluated)),
                    ("rows_short_circuited", Json::from(r.rows_short_circuited)),
                    ("total_cost", Json::from(r.total_cost)),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("benchmark", Json::from("serve_throughput")),
            ("scale", Json::from(scale.label())),
            (
                "serve_mode",
                Json::from(if tiered { "tiered" } else { "memory" }),
            ),
            (
                "buffer_pool_mb",
                if tiered {
                    Json::from(pool_mb)
                } else {
                    Json::Null
                },
            ),
            ("dataset", Json::from(bundle.name)),
            ("rows", Json::from(scale.rows())),
            ("queries_per_cell", Json::from(queries)),
            ("hardware_threads", Json::from(hw)),
            ("ledger_parity_with_sim", Json::from(ledgers_match)),
            ("speedup_1_to_4_reorg_on", Json::from(speedup_4)),
            ("speedup_1_to_8_reorg_on", Json::from(speedup_8)),
            ("cells", Json::Arr(rows)),
        ]);
        write_json_report(&path, &doc);
    }
}
