//! **Serving throughput** — the concurrent engine under load: scan
//! queries/sec and p50/p99 latency at 1/2/4/8 worker threads, with and
//! without concurrent background reorganization, on the TPC-H workload.
//!
//! This is the experiment the paper *cannot* run in its simulator: queries
//! keep arriving while a reorganization is in flight, and the delay Δ of
//! §VI-D5 is a **measured** window (wall-clock and queries served during
//! the switch), not a configured constant.
//!
//! With `--tiered` the engine serves through the disk tier
//! (`TieredStore`): every publish persists a `gen-N/` generation directory
//! (write + fsync + atomic rename) before the snapshot-pointer swap, and
//! the same run then reports an **empirical α** — the measured
//! aside-rewrite cost over the extrapolated full-scan cost — next to the
//! measured Δ. One `--tiered --json` run emits both numbers from one query
//! stream, unifying Table I's offline α measurement with the engine's Δ.
//!
//! The harness also replays the same stream through a single-worker FIFO
//! engine and through `oreo-sim`'s sequential OREO policy, asserting the
//! two ledgers are *identical* — concurrency (and the disk tier) changes
//! the serving plane, never the bookkeeping.
//!
//! Tiered scans travel through a fixed-capacity **buffer pool**
//! (`--buffer-pool-mb N`, default 64): partition pages are fetched from
//! disk on misses and served from memory on hits, the run reports
//! hit/miss/eviction counters plus the cold-vs-warm α̂ split (α̂ from
//! measured disk throughput vs. from pool-hit throughput), and the JSON
//! report carries hit-rate and qps per cell so a capacity sweep plots
//! qps-vs-capacity directly.
//!
//! `--scenario <name>` swaps the TPC-H drift stream for a member of the
//! workload zoo (`oreo-workload::scenarios`, over the telemetry dataset):
//! `flash-crowd`, `diurnal`, `rotating`, `correlated`, or `adversarial`
//! (the adaptive MTS adversary, generated against a live OREO instance).
//! `--scenario suite` runs every zoo member through both the simulator
//! (OREO vs the fully informed Static baseline, plus the offline-DP 2·H(n)
//! bound for the adversary) and one engine serving cell, asserts the
//! zoo's two regression claims programmatically, and writes
//! `BENCH_scenarios.json` — the repo's scenario regression trajectory.
//!
//! Live observability (`oreo-obs`): `--metrics-json <path>` streams
//! periodic JSONL registry snapshots (one line per interval per cell —
//! streaming latency percentiles, pool hit rate, current α̂) while the
//! cells run, `--metrics-interval-ms <n>` sets the cadence (default 250),
//! `--metrics-prom <path>` dumps the final registry in Prometheus text
//! exposition format, and `--trace <path>` writes the parity run's policy
//! decision trace. The parity check itself runs with the event journal
//! enabled and additionally asserts that replaying the journal reproduces
//! the engine's `CostLedger` bit-for-bit.
//!
//! `--ingest-rate <rows_per_1000_queries>` turns the default grid into a
//! mixed read/write run: a deterministic mutation schedule
//! (`oreo-workload::mutation`, ~90% appends with updates and deletes mixed
//! in) is interleaved with query submission at the requested rate, so every
//! measured cell serves delta-aware scans while the reorganizer folds
//! deltas into the base. Cells then report ingest totals, folds, write
//! amplification, and delta scan bytes. The ledger-parity replay always
//! runs *without* ingestion — with writes disabled the single-worker FIFO
//! engine must still replay `oreo-sim` byte-exactly (PR 9's regression
//! guarantee).
//!
//! `--tenants <N>` switches to the multi-tenant harness: N tables behind
//! one engine — one worker pool, one buffer pool, one reorganization
//! scheduler. Tenant 0 serves the zoo's flash-crowd stream (the
//! reorg-hungry aggressor); tenants 1..N serve quiet diurnal streams over
//! their own tables. The harness first asserts per-tenant FIFO ledger
//! parity (every tenant's ledger byte-identical to an independent
//! `oreo-sim` run of its substream), then measures the adversarial
//! co-tenant case twice — without and with the global α budget scheduler —
//! and reports per-tenant qps/p50/p99, pool hit%, and reorg deferrals.
//! The run gates on the victim tenant's p99 improving under the budget
//! scheduler and writes `BENCH_multitenant.json`.
//!
//! Flags: `--quick` (reduced scale), `--tiered` (disk-tiered serving),
//! `--buffer-pool-mb <n>` (tiered page-cache capacity), `--ingest-rate
//! <n>` (rows ingested per 1 000 queries), `--scenario <name|suite>`
//! (workload zoo), `--tenants <N>` (multi-tenant harness), `--json <path>`
//! (machine-readable report for cross-PR trajectories), `--metrics-json` /
//! `--metrics-interval-ms` / `--metrics-prom` / `--trace` (observability,
//! above).

use oreo_bench::common::{
    default_config, json_path_arg, make_stream, write_json_report, Json, Scale,
};
use oreo_core::CostLedger;
use oreo_engine::{
    Engine, EngineConfig, EngineStats, ObsConfig, ReorgBudget, ServeMode, TenantSpec, TenantStats,
};
use oreo_obs::render_trace;
use oreo_sim::{
    adversarial_bound, compare_oreo_static, default_spec, fmt_f, make_generator, run_policy,
    zoo_stream, PolicySetup, Technique, ThroughputReport,
};
use oreo_workload::{
    mutation_stream, telemetry_bundle, tpch_bundle, MutationConfig, MutationStream, QueryStream,
    Scenario, ScenarioConfig,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Queries per serving cell (smaller than the figure harnesses: every cell
/// replays the stream once per worker count × reorg mode).
fn serving_queries(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 2_000,
        Scale::Full => 10_000,
    }
}

/// Queries per scenario in `--scenario suite` mode: long enough that every
/// zoo phase amortizes α at the paper's ratio (~1 500 queries per phase at
/// α = 80; see ROADMAP.md on `policy_ordering`) *and* that enough distinct
/// phase anchors accumulate to overflow the fully informed Static layout's
/// partition budget — the zoo's ordering claim needs ≥ 8 phases.
fn suite_queries(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 12_000,
        Scale::Full => 20_000,
    }
}

/// The zoo scenarios' framework configuration: the paper defaults, but with
/// the candidate window/generation cadence halved. Zoo phases are ~1 500
/// queries, so candidates must be trained on intra-phase windows — at the
/// default 200-query cadence a generation straddles phase boundaries often
/// enough that the rotating scenario churns between mixed-shape layouts
/// instead of parking on per-phase ones.
fn scenario_config(seed: u64) -> oreo_core::OreoConfig {
    oreo_core::OreoConfig {
        window: 100,
        generation_interval: 100,
        ..default_config(seed)
    }
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Worker counts for single-scenario serving cells (reorg always on — the
/// zoo exists to exercise reorganization behavior).
const SCENARIO_WORKERS: [usize; 3] = [1, 2, 4];

/// The additive constant `c` of the asserted adversarial bound
/// `cost(OREO) ≤ 2·H(n)·cost(OFF) + c·α`. The proof grants O(α) for the
/// phase in flight; the full framework adds estimate-vs-exact noise
/// (decisions on sample estimates, billing on exact models), measured well
/// inside this slack — see `tests/competitive_ratio.rs`, which asserts the
/// same constant.
const SUITE_SLACK_ALPHAS: f64 = 8.0;

/// A fresh generation root for one tiered cell (removed after the run).
fn cell_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("oreo-serve-{}-{tag}", std::process::id()))
}

fn serve_mode(tiered: bool, tag: &str) -> ServeMode {
    if tiered {
        let root = cell_root(tag);
        let _ = std::fs::remove_dir_all(&root);
        ServeMode::Tiered { root }
    } else {
        ServeMode::Memory
    }
}

/// Remove a tiered cell's generation root once the engine is done with it.
fn cleanup(mode: &ServeMode) {
    if let ServeMode::Tiered { root } = mode {
        let _ = std::fs::remove_dir_all(root);
    }
}

/// Parse `--buffer-pool-mb <n>` (default 64 MiB).
fn parse_pool_mb() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--buffer-pool-mb")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Parse `--ingest-rate <rows_per_1000_queries>`, if present.
fn parse_ingest_rate() -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--ingest-rate")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Parse `--tenants <N>`, if present (the multi-tenant harness).
fn parse_tenants() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--tenants")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Parse `--scenario <name|suite>`, if present.
fn parse_scenario() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a `--flag <path>` argument, if present.
fn parse_path_flag(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Observability flags shared by every mode of this binary.
#[derive(Clone, Debug, Default)]
struct ObsFlags {
    /// `--metrics-json <path>`: JSONL registry snapshots, one line per
    /// interval per serving cell (cells append to the shared file, each
    /// line stamped with the cell label).
    metrics_json: Option<PathBuf>,
    /// `--metrics-prom <path>`: final registry state in Prometheus text
    /// exposition format (each cell overwrites — the file holds the last
    /// cell's dump).
    metrics_prom: Option<PathBuf>,
    /// `--metrics-interval-ms <n>`: snapshot cadence (default 250 ms).
    interval_ms: u64,
    /// `--trace <path>`: the parity run's rendered policy decision trace.
    trace: Option<PathBuf>,
}

impl ObsFlags {
    fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let interval_ms = args
            .iter()
            .position(|a| a == "--metrics-interval-ms")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(250);
        Self {
            metrics_json: parse_path_flag("--metrics-json"),
            metrics_prom: parse_path_flag("--metrics-prom"),
            interval_ms,
            trace: parse_path_flag("--trace"),
        }
    }

    /// The engine-side config for one serving cell (no journal — the
    /// bounded event journal runs on the parity replay, not the measured
    /// throughput cells).
    fn cell_config(&self, label: String) -> ObsConfig {
        ObsConfig {
            metrics_json: self.metrics_json.clone(),
            metrics_prom: self.metrics_prom.clone(),
            metrics_interval: Some(Duration::from_millis(self.interval_ms.max(1))),
            label,
            ..Default::default()
        }
    }
}

/// The serving environment shared by the parity replay and every measured
/// cell: serve tier, buffer-pool capacity, framework config, and
/// observability flags.
struct ServeEnv<'a> {
    tiered: bool,
    pool_mb: u64,
    config: &'a oreo_core::OreoConfig,
    obs: &'a ObsFlags,
}

fn run_cell(
    bundle: &oreo_workload::DatasetBundle,
    stream: &QueryStream,
    workers: usize,
    background_reorg: bool,
    env: &ServeEnv<'_>,
    ingest: Option<&MutationStream>,
) -> (ThroughputReport, EngineStats) {
    let config = env.config.clone();
    let initial = default_spec(bundle, config.partitions, config.seed);
    let generator = make_generator(Technique::QdTree, bundle);
    let mode = serve_mode(env.tiered, &format!("w{workers}-r{background_reorg}"));
    let cell_label = format!(
        "w{workers}-reorg_{}",
        if background_reorg { "on" } else { "off" }
    );
    let engine = Engine::start(
        Arc::clone(&bundle.table),
        initial,
        generator,
        config,
        EngineConfig::default()
            .with_workers(workers)
            .with_background_reorg(background_reorg)
            .with_mode(mode.clone())
            .with_buffer_pool_bytes(env.pool_mb * 1024 * 1024)
            .with_obs(env.obs.cell_config(cell_label)),
    );
    let started = Instant::now();
    let mut next_batch = 0usize;
    for (i, q) in stream.queries.iter().enumerate() {
        if let Some(ms) = ingest {
            while next_batch < ms.batches.len() && ms.batches[next_batch].after_query <= i {
                engine
                    .ingest(&ms.batches[next_batch].ops)
                    .expect("ingest batch");
                next_batch += 1;
            }
        }
        engine.submit(q.clone());
    }
    if let Some(ms) = ingest {
        while next_batch < ms.batches.len() {
            engine
                .ingest(&ms.batches[next_batch].ops)
                .expect("ingest batch");
            next_batch += 1;
        }
    }
    engine.drain();
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.shutdown();
    cleanup(&mode);
    for e in &stats.tiered_errors {
        eprintln!("[workers={workers}] disk-tier degradation: {e}");
    }
    let report = ThroughputReport {
        label: if background_reorg {
            "reorg on".into()
        } else {
            "reorg off".into()
        },
        serve_mode: stats.mode.label().into(),
        workers,
        queries: stats.queries,
        elapsed_s: elapsed,
        qps: stats.queries as f64 / elapsed,
        p50_us: stats.latency.p50_us,
        p95_us: stats.latency.p95_us,
        p99_us: stats.latency.p99_us,
        max_us: stats.latency.max_us,
        mean_us: stats.latency.mean_us,
        switches: stats.switches,
        reorgs_completed: stats.snapshots_published,
        mean_delta_queries: stats.mean_delta_queries().unwrap_or(0.0),
        mean_delta_s: stats.mean_delta_seconds().unwrap_or(0.0),
        bytes_scanned: stats.bytes_scanned,
        reorg_bytes_written: stats.reorg_bytes_written(),
        alpha_empirical: stats.empirical_alpha().unwrap_or(0.0),
        alpha_cold: stats.alpha_cold().unwrap_or(0.0),
        alpha_warm: stats.alpha_warm().unwrap_or(0.0),
        pool_hits: stats.pool.map_or(0, |p| p.hits),
        pool_misses: stats.pool.map_or(0, |p| p.misses),
        pool_evictions: stats.pool.map_or(0, |p| p.evictions),
        pool_hit_rate: stats.pool_hit_rate(),
        io_cold_bytes: stats.io_cold_bytes,
        io_cached_bytes: stats.io_cached_bytes,
        chunks_evaluated: stats.chunks_evaluated,
        rows_short_circuited: stats.rows_short_circuited,
        total_cost: stats.ledger.total(),
    };
    (report, stats)
}

/// Replay `stream` through `oreo-sim`'s sequential OREO and through a
/// single-worker FIFO engine in the measured serve mode — with the event
/// journal enabled — asserting three-way parity: the engine's ledger
/// equals the simulator's, and replaying the journal's policy events
/// ([`CostLedger::replay`]) reproduces the engine's ledger bit-for-bit.
/// Returns `true` (the assertions fire otherwise) so JSON reports can
/// carry the check.
fn assert_ledger_parity(
    bundle: &oreo_workload::DatasetBundle,
    stream: &QueryStream,
    env: &ServeEnv<'_>,
) -> bool {
    let config = env.config;
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config.clone());
    let mut sequential = setup.oreo();
    let sim_result = run_policy(&mut sequential, &stream.queries, 0);
    let parity_mode = serve_mode(env.tiered, "parity");
    // Lifecycle spans cost ~5 events/query plus policy events; size the
    // ring so a full FIFO replay never overwrites.
    let journal_capacity = stream.queries.len() * 8 + 4096;
    let parity_engine = Engine::start(
        Arc::clone(&bundle.table),
        default_spec(bundle, config.partitions, config.seed),
        make_generator(Technique::QdTree, bundle),
        config.clone(),
        EngineConfig::sequential_parity()
            .with_mode(parity_mode.clone())
            .with_buffer_pool_bytes(env.pool_mb * 1024 * 1024)
            .with_journal_capacity(journal_capacity),
    );
    for q in &stream.queries {
        parity_engine.submit(q.clone());
    }
    parity_engine.drain();
    let parity = parity_engine.shutdown();
    cleanup(&parity_mode);
    let ledgers_match =
        parity.ledger == sim_result.ledger && parity.switches == sim_result.switches;
    println!(
        "ledger parity vs oreo-sim sequential OREO ({} FIFO): {} (engine total {:.2}, \
         sim total {:.2}, switches {} / {})",
        parity.mode.label(),
        if ledgers_match { "EXACT" } else { "MISMATCH" },
        parity.ledger.total(),
        sim_result.ledger.total(),
        parity.switches,
        sim_result.switches,
    );
    assert!(
        ledgers_match,
        "single-threaded engine ledger must replay oreo-sim exactly"
    );
    let replayed = CostLedger::replay(&parity.events);
    let replay_match = parity.events_dropped == 0 && replayed == parity.ledger;
    println!(
        "journal replay parity: {} ({} events, {} dropped, replayed total {:.2})",
        if replay_match { "EXACT" } else { "MISMATCH" },
        parity.events.len(),
        parity.events_dropped,
        replayed.total(),
    );
    assert!(
        replay_match,
        "replaying the event journal must reproduce the engine ledger bit-for-bit \
         (dropped {}, replayed {:?} vs ledger {:?})",
        parity.events_dropped, replayed, parity.ledger
    );
    if let Some(path) = &env.obs.trace {
        let trace = render_trace(&parity.events);
        match std::fs::write(path, trace) {
            Ok(()) => println!(
                "decision trace: {} events written to {}",
                parity.events.len(),
                path.display()
            ),
            Err(e) => eprintln!("decision trace write to {path:?} failed: {e}"),
        }
    }
    ledgers_match && replay_match
}

/// Append the write-path fields to a cell's JSON object (only emitted when
/// `--ingest-rate` is active).
fn with_ingest_fields(cell: Json, stats: &EngineStats) -> Json {
    let Json::Obj(mut fields) = cell else {
        return cell;
    };
    let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
    push("ingest_batches", Json::from(stats.ingest_batches));
    push("rows_appended", Json::from(stats.rows_appended));
    push("rows_deleted", Json::from(stats.rows_deleted));
    push("ingest_rows_written", Json::from(stats.ingest_rows_written));
    push(
        "write_amplification",
        stats.write_amplification().map_or(Json::Null, Json::from),
    );
    push("delta_bytes_scanned", Json::from(stats.delta_bytes_scanned));
    push("delta_rows_unfolded", Json::from(stats.delta_rows));
    push("folds", Json::from(stats.folds()));
    push("folded_rows", Json::from(stats.folded_rows()));
    push("compactions", Json::from(stats.ledger.compactions));
    push("compaction_cost", Json::from(stats.ledger.compaction_cost));
    push("wal_bytes", Json::from(stats.wal_bytes));
    Json::Obj(fields)
}

/// One serving cell as a JSON object (the `cells` array entry shared by
/// every mode of this binary).
fn cell_json(r: &ThroughputReport) -> Json {
    Json::obj([
        ("mode", Json::from(r.label.clone())),
        ("serve_mode", Json::from(r.serve_mode.clone())),
        ("workers", Json::from(r.workers)),
        ("queries", Json::from(r.queries)),
        ("elapsed_s", Json::from(r.elapsed_s)),
        ("qps", Json::from(r.qps)),
        ("p50_us", Json::from(r.p50_us)),
        ("p95_us", Json::from(r.p95_us)),
        ("p99_us", Json::from(r.p99_us)),
        ("max_us", Json::from(r.max_us)),
        ("mean_us", Json::from(r.mean_us)),
        ("switches", Json::from(r.switches)),
        ("reorgs_completed", Json::from(r.reorgs_completed)),
        ("mean_delta_queries", Json::from(r.mean_delta_queries)),
        ("mean_delta_s", Json::from(r.mean_delta_s)),
        ("bytes_scanned", Json::from(r.bytes_scanned)),
        ("reorg_bytes_written", Json::from(r.reorg_bytes_written)),
        (
            "alpha_empirical",
            if r.alpha_empirical > 0.0 {
                Json::from(r.alpha_empirical)
            } else {
                Json::Null
            },
        ),
        (
            "alpha_cold",
            if r.alpha_cold > 0.0 {
                Json::from(r.alpha_cold)
            } else {
                Json::Null
            },
        ),
        (
            "alpha_warm",
            if r.alpha_warm > 0.0 {
                Json::from(r.alpha_warm)
            } else {
                Json::Null
            },
        ),
        ("pool_hits", Json::from(r.pool_hits)),
        ("pool_misses", Json::from(r.pool_misses)),
        ("pool_evictions", Json::from(r.pool_evictions)),
        ("pool_hit_rate", Json::from(r.pool_hit_rate)),
        ("io_cold_bytes", Json::from(r.io_cold_bytes)),
        ("io_cached_bytes", Json::from(r.io_cached_bytes)),
        ("chunks_evaluated", Json::from(r.chunks_evaluated)),
        ("rows_short_circuited", Json::from(r.rows_short_circuited)),
        ("total_cost", Json::from(r.total_cost)),
    ])
}

fn main() {
    let scale = Scale::from_args();
    let tiered = std::env::args().any(|a| a == "--tiered");
    let pool_mb = parse_pool_mb();
    let json_path = json_path_arg();
    let obs = ObsFlags::from_args();

    if let Some(n) = parse_tenants() {
        assert!(
            (2..=8).contains(&n),
            "--tenants takes 2..=8 co-tenants, got {n}"
        );
        run_multitenant(n, scale, tiered, pool_mb, json_path, &obs);
        return;
    }

    match parse_scenario().as_deref() {
        None => run_default(scale, tiered, pool_mb, json_path, &obs, parse_ingest_rate()),
        Some("suite") => run_suite(scale, tiered, pool_mb, json_path, &obs),
        Some(name) => {
            let scenario = Scenario::from_name(name).unwrap_or_else(|| {
                let known: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
                panic!("unknown scenario {name:?}; known: {known:?} (or \"suite\")")
            });
            run_scenario(scenario, scale, tiered, pool_mb, json_path, &obs);
        }
    }
}

/// The original harness: TPC-H drift stream over the full worker × reorg
/// grid.
fn run_default(
    scale: Scale,
    tiered: bool,
    pool_mb: u64,
    json_path: Option<PathBuf>,
    obs: &ObsFlags,
    ingest_rate: Option<u64>,
) {
    let seed = 3;
    let queries = serving_queries(scale);

    println!("== Serving throughput: concurrent engine vs worker count ==");
    println!(
        "scale: {} ({} rows, {} queries/cell, serve mode: {}, {} hardware threads available)",
        scale.label(),
        scale.rows(),
        queries,
        if tiered {
            format!("tiered, {pool_mb} MiB buffer pool")
        } else {
            "memory".into()
        },
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );
    println!();

    let bundle = tpch_bundle(scale.rows(), 1);
    let mut stream = make_stream(&bundle, scale, 2);
    stream.queries.truncate(queries);
    let config = default_config(seed);
    let env = ServeEnv {
        tiered,
        pool_mb,
        config: &config,
        obs,
    };

    // The mutation schedule every measured cell interleaves: ~90% appends,
    // the rest updates + deletes, one batch per ~100 served queries.
    let ingest = ingest_rate.map(|per_k| {
        let total_rows = (queries as u64 * per_k / 1000).max(1);
        let batches = (queries / 100).clamp(1, 200);
        let per_batch = (total_rows / batches as u64).max(1) as usize;
        let schedule = mutation_stream(
            bundle.table.schema(),
            bundle.table.num_rows() as u64,
            MutationConfig {
                batches,
                appends_per_batch: per_batch - 2 * (per_batch / 10).min(per_batch / 2),
                updates_per_batch: per_batch / 10,
                deletes_per_batch: per_batch / 10,
                total_queries: queries,
                seed: 11,
            },
        );
        println!(
            "ingest schedule: {} batches, {} appends + {} tombstones over {} queries \
             ({} rows / 1 000 queries requested)",
            schedule.batches.len(),
            schedule.appended,
            schedule.deleted,
            queries,
            per_k,
        );
        schedule
    });

    // Ledger parity: sequential simulator vs single-worker FIFO engine —
    // in the *same* serve mode as the measured cells, so the acceptance
    // check covers the tiered path too. Always runs WITHOUT ingestion:
    // with writes disabled the engine must replay oreo-sim byte-exactly.
    let ledgers_match = assert_ledger_parity(&bundle, &stream, &env);
    println!();

    let mut reports: Vec<ThroughputReport> = Vec::new();
    let mut cell_stats: Vec<EngineStats> = Vec::new();
    for &workers in &WORKER_COUNTS {
        for reorg in [true, false] {
            let (report, stats) = run_cell(&bundle, &stream, workers, reorg, &env, ingest.as_ref());
            println!(
                "[workers={} {}] {:>7} qps, p50 {:>6} µs, p99 {:>7} µs, {} switches, {} reorgs, \
                 mean Δ = {} queries / {}s",
                report.workers,
                report.label,
                fmt_f(report.qps, 0),
                fmt_f(report.p50_us, 0),
                fmt_f(report.p99_us, 0),
                report.switches,
                report.reorgs_completed,
                fmt_f(report.mean_delta_queries, 1),
                fmt_f(report.mean_delta_s, 3),
            );
            if ingest.is_some() {
                println!(
                    "[workers={} {}]   ingest: {} rows in {} batches ({} tombstones), \
                     WA {}, {} folds ({} rows), {} delta bytes scanned, {} rows unfolded",
                    report.workers,
                    report.label,
                    stats.rows_appended,
                    stats.ingest_batches,
                    stats.rows_deleted,
                    stats
                        .write_amplification()
                        .map_or("-".into(), |w| fmt_f(w, 2)),
                    stats.folds(),
                    stats.folded_rows(),
                    stats.delta_bytes_scanned,
                    stats.delta_rows,
                );
            }
            if reorg {
                debug_assert_eq!(stats.snapshots_published, stats.switches);
            }
            reports.push(report);
            cell_stats.push(stats);
        }
    }

    println!();
    println!("{}", ThroughputReport::render_table(&reports));

    // The unified measurement: α and Δ as observables of the same stream.
    if tiered {
        for (report, stats) in reports
            .iter()
            .zip(&cell_stats)
            .filter(|(r, _)| r.label == "reorg on")
        {
            let workers = &report.workers;
            let est = stats.alpha_estimator();
            match (stats.empirical_alpha(), stats.mean_delta_queries()) {
                (Some(alpha), Some(delta_q)) => println!(
                    "[workers={workers}] empirical α = {:.1} (mean rewrite {:.4}s over \
                     extrapolated full scan {:.4}s, {} bytes/rewrite) — same stream's \
                     measured Δ = {:.1} queries / {:.4}s",
                    alpha,
                    est.mean_reorg_seconds().unwrap_or(0.0),
                    est.full_scan_seconds().unwrap_or(0.0),
                    fmt_f(est.mean_reorg_bytes().unwrap_or(0.0), 0),
                    delta_q,
                    stats.mean_delta_seconds().unwrap_or(0.0),
                ),
                _ => println!(
                    "[workers={workers}] empirical α not measurable (no completed rewrite)"
                ),
            }
            let pool = stats.pool.unwrap_or_default();
            println!(
                "[workers={workers}]   buffer pool: {} hits / {} misses ({:.1}% hit rate), \
                 {} evictions; scan bytes cold {} / cached {}; α̂ cold = {}, α̂ warm = {}",
                pool.hits,
                pool.misses,
                stats.pool_hit_rate() * 100.0,
                pool.evictions,
                stats.io_cold_bytes,
                stats.io_cached_bytes,
                stats.alpha_cold().map_or("-".into(), |a| fmt_f(a, 1)),
                stats.alpha_warm().map_or("-".into(), |a| fmt_f(a, 1)),
            );
        }
        println!();
    }

    let cell = |workers: usize, label: &str| {
        reports
            .iter()
            .find(|r| r.workers == workers && r.label == label)
            .expect("cell present")
    };
    let speedup_4 = cell(4, "reorg on").speedup_over(cell(1, "reorg on"));
    let speedup_8 = cell(8, "reorg on").speedup_over(cell(1, "reorg on"));
    println!(
        "scan throughput scaling (reorg on): 1→4 workers = {:.2}x, 1→8 workers = {:.2}x",
        speedup_4, speedup_8
    );
    // Scan work runs lock-free, so the scaling target is >2x from 1→4
    // workers on a host that actually has the cores. Enforcing a perf
    // property on shared/undersized CI runners is flaky by construction,
    // so the hard check is opt-in: OREO_ENFORCE_SCALING=1.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let enforce = std::env::var_os("OREO_ENFORCE_SCALING").is_some_and(|v| v == "1");
    if enforce && hw >= 4 {
        assert!(
            speedup_4 > 2.0,
            "expected >2x scan throughput from 1→4 workers, measured {speedup_4:.2}x"
        );
    } else if hw < 4 {
        println!(
            "(only {hw} hardware thread(s) available — the >2x 1→4 scaling target \
             needs a multi-core host)"
        );
    } else {
        println!("(set OREO_ENFORCE_SCALING=1 to fail the run if 1→4 scaling is ≤2x)");
    }

    if let Some(path) = json_path {
        let rows = reports
            .iter()
            .zip(&cell_stats)
            .map(|(r, s)| {
                let cell = cell_json(r);
                if ingest.is_some() {
                    with_ingest_fields(cell, s)
                } else {
                    cell
                }
            })
            .collect();
        let doc = Json::obj([
            ("benchmark", Json::from("serve_throughput")),
            ("scale", Json::from(scale.label())),
            (
                "ingest_rate_per_1000",
                ingest_rate.map_or(Json::Null, Json::from),
            ),
            (
                "ingest_rows",
                ingest
                    .as_ref()
                    .map_or(Json::Null, |m| Json::from(m.appended)),
            ),
            (
                "ingest_tombstones",
                ingest
                    .as_ref()
                    .map_or(Json::Null, |m| Json::from(m.deleted)),
            ),
            (
                "serve_mode",
                Json::from(if tiered { "tiered" } else { "memory" }),
            ),
            (
                "buffer_pool_mb",
                if tiered {
                    Json::from(pool_mb)
                } else {
                    Json::Null
                },
            ),
            ("dataset", Json::from(bundle.name)),
            ("rows", Json::from(scale.rows())),
            ("queries_per_cell", Json::from(queries)),
            ("hardware_threads", Json::from(hw)),
            ("ledger_parity_with_sim", Json::from(ledgers_match)),
            ("journal_replay_parity", Json::from(ledgers_match)),
            ("speedup_1_to_4_reorg_on", Json::from(speedup_4)),
            ("speedup_1_to_8_reorg_on", Json::from(speedup_8)),
            ("cells", Json::Arr(rows)),
        ]);
        write_json_report(&path, &doc);
    }
}

/// One zoo scenario through the serving engine: telemetry dataset, the
/// scenario's stream (the adversary generated against a live OREO twin),
/// ledger-parity assertion, then serving cells at 1/2/4 workers with
/// background reorganization on.
fn run_scenario(
    scenario: Scenario,
    scale: Scale,
    tiered: bool,
    pool_mb: u64,
    json_path: Option<PathBuf>,
    obs: &ObsFlags,
) {
    let seed = 3;
    // Zoo phases need ~1 500 queries each to amortize α = 80, so scenario
    // cells run the longer suite stream rather than `serving_queries`.
    let queries = suite_queries(scale);

    println!(
        "== Serving throughput: scenario zoo / {} ==",
        scenario.name()
    );
    println!("  {}", scenario.description());
    println!("  stresses: {}", scenario.paper_section());
    println!(
        "scale: {} ({} rows, {} queries/cell, serve mode: {})",
        scale.label(),
        scale.rows(),
        queries,
        if tiered {
            format!("tiered, {pool_mb} MiB buffer pool")
        } else {
            "memory".into()
        },
    );
    println!();

    let bundle = telemetry_bundle(scale.rows(), 1);
    let config = scenario_config(seed);
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config.clone());
    let cfg = ScenarioConfig {
        total_queries: queries,
        seed: 2,
    };
    let stream = zoo_stream(&setup, scenario, cfg);
    let env = ServeEnv {
        tiered,
        pool_mb,
        config: &config,
        obs,
    };

    let ledgers_match = assert_ledger_parity(&bundle, &stream, &env);
    println!();

    let mut reports: Vec<ThroughputReport> = Vec::new();
    for &workers in &SCENARIO_WORKERS {
        let (report, _) = run_cell(&bundle, &stream, workers, true, &env, None);
        println!(
            "[workers={}] {:>7} qps, p50 {:>6} µs, p99 {:>7} µs, {} switches, hit% {:.1}, \
             α̂ {}",
            report.workers,
            fmt_f(report.qps, 0),
            fmt_f(report.p50_us, 0),
            fmt_f(report.p99_us, 0),
            report.switches,
            report.pool_hit_rate * 100.0,
            if report.alpha_empirical > 0.0 {
                fmt_f(report.alpha_empirical, 1)
            } else {
                "-".into()
            },
        );
        reports.push(report);
    }

    println!();
    println!("{}", ThroughputReport::render_table(&reports));

    if let Some(path) = json_path {
        let rows = reports.iter().map(cell_json).collect();
        let doc = Json::obj([
            ("benchmark", Json::from("serve_scenario")),
            ("scenario", Json::from(scenario.name())),
            ("description", Json::from(scenario.description())),
            ("paper_section", Json::from(scenario.paper_section())),
            ("scale", Json::from(scale.label())),
            (
                "serve_mode",
                Json::from(if tiered { "tiered" } else { "memory" }),
            ),
            (
                "buffer_pool_mb",
                if tiered {
                    Json::from(pool_mb)
                } else {
                    Json::Null
                },
            ),
            ("dataset", Json::from(bundle.name)),
            ("rows", Json::from(scale.rows())),
            ("queries_per_cell", Json::from(queries)),
            ("segments", Json::from(stream.segments.len())),
            ("ledger_parity_with_sim", Json::from(ledgers_match)),
            ("journal_replay_parity", Json::from(ledgers_match)),
            ("cells", Json::Arr(rows)),
        ]);
        write_json_report(&path, &doc);
    }
}

/// The whole zoo: per scenario, the simulator comparison (OREO vs Static;
/// the 2·H(n) offline-DP bound for the adversary) plus one engine serving
/// cell. Asserts the zoo's regression claims and writes
/// `BENCH_scenarios.json`.
fn run_suite(scale: Scale, tiered: bool, pool_mb: u64, json_path: Option<PathBuf>, obs: &ObsFlags) {
    let seed = 3;
    let queries = suite_queries(scale);

    println!("== Scenario suite: workload zoo regression trajectory ==");
    println!(
        "scale: {} ({} rows, {} queries/scenario, serve mode: {}, α = {})",
        scale.label(),
        scale.rows(),
        queries,
        if tiered { "tiered" } else { "memory" },
        default_config(seed).alpha,
    );
    println!();

    let bundle = telemetry_bundle(scale.rows(), 1);
    let config = scenario_config(seed);
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config.clone());
    let cfg = ScenarioConfig {
        total_queries: queries,
        seed: 2,
    };
    let env = ServeEnv {
        tiered,
        pool_mb,
        config: &config,
        obs,
    };

    let mut entries: Vec<Json> = Vec::new();
    let mut bound_json = Json::Null;
    let mut ordering_failures: Vec<String> = Vec::new();
    let mut bound_failure: Option<String> = None;

    for scenario in Scenario::ALL {
        let (stream, bound) = if scenario.is_adversarial() {
            let (stream, bound) = adversarial_bound(&setup, cfg, SUITE_SLACK_ALPHAS);
            (stream, Some(bound))
        } else {
            (zoo_stream(&setup, scenario, cfg), None)
        };

        let (oreo_run, static_run) = compare_oreo_static(&setup, &stream);
        let oreo_total = oreo_run.total();
        let static_total = static_run.total();
        let beats_static = oreo_total < static_total;

        let (report, _) = run_cell(&bundle, &stream, 2, true, &env, None);

        println!(
            "[{:>11}] sim: OREO {:>8} vs Static {:>8} ({}{:.1}%), {} switches | \
             engine: {:>7} qps, p99 {:>7} µs, hit% {:.1}",
            scenario.name(),
            fmt_f(oreo_total, 1),
            fmt_f(static_total, 1),
            if beats_static { "-" } else { "+" },
            ((oreo_total - static_total) / static_total * 100.0).abs(),
            oreo_run.switches,
            fmt_f(report.qps, 0),
            fmt_f(report.p99_us, 0),
            report.pool_hit_rate * 100.0,
        );

        if let Some(b) = &bound {
            println!(
                "[{:>11}] 2·H(n) bound: OREO {:.1} ≤ 2·H({}) · OFF {:.1} + {}·α = {:.1} — {} \
                 (ratio {:.2}, OFF switches {})",
                scenario.name(),
                b.oreo_total,
                b.n_states,
                b.offline.total_cost,
                SUITE_SLACK_ALPHAS,
                b.bound,
                if b.holds { "HOLDS" } else { "VIOLATED" },
                b.ratio,
                b.offline.switches,
            );
            if !b.holds {
                bound_failure = Some(format!(
                    "adversarial: OREO {:.1} > bound {:.1}",
                    b.oreo_total, b.bound
                ));
            }
            bound_json = Json::obj([
                ("n_states", Json::from(b.n_states)),
                ("h_n", Json::from(b.h_n)),
                ("oreo_total", Json::from(b.oreo_total)),
                ("oreo_switches", Json::from(b.oreo_switches)),
                ("offline_total", Json::from(b.offline.total_cost)),
                ("offline_switches", Json::from(b.offline.switches)),
                ("slack_alphas", Json::from(SUITE_SLACK_ALPHAS)),
                ("bound", Json::from(b.bound)),
                ("ratio", Json::from(b.ratio)),
                ("holds", Json::from(b.holds)),
            ]);
        } else if !beats_static {
            ordering_failures.push(format!(
                "{}: OREO {oreo_total:.1} ≥ Static {static_total:.1}",
                scenario.name()
            ));
        }

        entries.push(Json::obj([
            ("scenario", Json::from(scenario.name())),
            ("description", Json::from(scenario.description())),
            ("paper_section", Json::from(scenario.paper_section())),
            ("adversarial", Json::from(scenario.is_adversarial())),
            ("segments", Json::from(stream.segments.len())),
            ("sim_oreo_total", Json::from(oreo_total)),
            ("sim_static_total", Json::from(static_total)),
            ("sim_oreo_switches", Json::from(oreo_run.switches)),
            ("sim_static_switches", Json::from(static_run.switches)),
            ("oreo_beats_static", Json::from(beats_static)),
            ("qps", Json::from(report.qps)),
            ("p50_us", Json::from(report.p50_us)),
            ("p99_us", Json::from(report.p99_us)),
            ("pool_hit_rate", Json::from(report.pool_hit_rate)),
            (
                "alpha_empirical",
                if report.alpha_empirical > 0.0 {
                    Json::from(report.alpha_empirical)
                } else {
                    Json::Null
                },
            ),
            ("switches", Json::from(report.switches)),
            ("engine_total_cost", Json::from(report.total_cost)),
        ]));
    }

    println!();
    let doc = Json::obj([
        ("benchmark", Json::from("scenario_suite")),
        ("scale", Json::from(scale.label())),
        (
            "serve_mode",
            Json::from(if tiered { "tiered" } else { "memory" }),
        ),
        ("dataset", Json::from(bundle.name)),
        ("rows", Json::from(scale.rows())),
        ("queries_per_scenario", Json::from(queries)),
        ("alpha", Json::from(default_config(seed).alpha)),
        ("adversarial_bound", bound_json),
        ("scenarios", Json::Arr(entries)),
    ]);
    let path = json_path.unwrap_or_else(|| PathBuf::from("BENCH_scenarios.json"));
    write_json_report(&path, &doc);

    // The zoo's two regression claims, asserted programmatically so a CI
    // run of this mode gates on them.
    assert!(
        bound_failure.is_none(),
        "2·H(n) adversarial bound violated: {}",
        bound_failure.unwrap_or_default()
    );
    assert!(
        ordering_failures.is_empty(),
        "OREO must beat Static on every non-adversarial zoo scenario: {ordering_failures:?}"
    );
    println!(
        "suite ok: 2·H(n) bound holds on the adversary; OREO beats Static on all {} \
         non-adversarial scenarios",
        Scenario::ALL.len() - 1
    );
}

/// Queries per quiet co-tenant in `--tenants` mode: long enough that the
/// aggressor's drift (at a quarter of this volume) amortizes its reduced α
/// and triggers a steady stream of switches.
fn multitenant_queries(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 6_000,
        Scale::Full => 12_000,
    }
}

/// Framework config for the *quiet* co-tenants of `--tenants` mode.
/// Candidate generation runs on the serving path under the core lock (it
/// is part of the framework's modeled cost), and one generation pass costs
/// tens of milliseconds — if a quiet tenant regenerates every 100 queries,
/// its own p99 is generation stalls and the budget scheduler's effect on
/// the tail is invisible. Quiet tenants are stable workloads: they
/// regenerate rarely (well under 1% of queries), keep a small training
/// sample, and a halved partition count.
fn multitenant_config(seed: u64) -> oreo_core::OreoConfig {
    oreo_core::OreoConfig {
        window: 200,
        generation_interval: 1_500,
        data_sample_rows: 250,
        partitions: 32,
        ..default_config(seed)
    }
}

/// One tenant of the multi-tenant harness: its own table, framework
/// config, zoo stream, and sim setup (for the per-tenant parity oracle).
struct TenantCase {
    name: String,
    scenario: Scenario,
    bundle: oreo_workload::DatasetBundle,
    config: oreo_core::OreoConfig,
    stream: QueryStream,
    /// Submit one query of this tenant every `stride` rounds of the
    /// interleaved loop — the aggressor runs sparse (its own service
    /// footprint is small either way) while its reorganization pressure
    /// rides on α and cadence, not on query volume.
    stride: usize,
    /// Per-tenant concurrency cap in the closed-loop cells — the
    /// frontend-fairness knob a real multi-tenant gateway applies. The
    /// aggressor is capped at 1 so its (possibly slow) scans can occupy at
    /// most one worker; otherwise every cell's victim tail is just the
    /// aggressor's service time and the scheduler's effect is invisible.
    inflight: usize,
}

impl TenantCase {
    fn spec(&self) -> TenantSpec {
        TenantSpec {
            name: self.name.clone(),
            table: Arc::clone(&self.bundle.table),
            initial_spec: default_spec(&self.bundle, self.config.partitions, self.config.seed),
            generator: make_generator(Technique::QdTree, &self.bundle),
            oreo: self.config.clone(),
        }
    }
}

/// In-flight queries per *quiet* tenant in the measured (closed-loop)
/// cells (the aggressor is capped at 1 — see [`TenantCase::inflight`]). An
/// open loop would submit every stream instantly and measure queue
/// backlog; a small bounded window keeps the engine busy while latency
/// still reflects service time plus co-tenant interference.
const MT_INFLIGHT: usize = 4;

/// Start an N-tenant engine, submit every tenant's stream round-robin
/// interleaved (each tenant firing every [`TenantCase::stride`] rounds),
/// drain, and return (elapsed, stats). `closed_loop` bounds each tenant
/// to its [`TenantCase::inflight`] outstanding queries (the measured
/// cells); the parity replay runs open-loop — bookkeeping order is all
/// that matters there.
fn run_multitenant_cell(
    cases: &[TenantCase],
    config: EngineConfig,
    closed_loop: bool,
) -> (f64, EngineStats) {
    let engine = Engine::start_tenants(cases.iter().map(TenantCase::spec).collect(), config);
    let started = Instant::now();
    let rounds = cases
        .iter()
        .map(|c| c.stream.queries.len() * c.stride)
        .max()
        .unwrap();
    let mut inflight: Vec<std::collections::VecDeque<oreo_engine::ResultHandle>> =
        (0..cases.len()).map(|_| Default::default()).collect();
    for i in 0..rounds {
        for (t, case) in cases.iter().enumerate() {
            if i % case.stride != 0 {
                continue;
            }
            if let Some(q) = case.stream.queries.get(i / case.stride) {
                if closed_loop {
                    if inflight[t].len() >= case.inflight {
                        inflight[t].pop_front().unwrap().wait();
                    }
                    inflight[t].push_back(engine.submit_tracked_to(t, q.clone()));
                } else {
                    engine.submit_to(t, q.clone());
                }
            }
        }
    }
    for pending in &mut inflight {
        while let Some(h) = pending.pop_front() {
            h.wait();
        }
    }
    engine.drain();
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.shutdown();
    for e in &stats.tiered_errors {
        eprintln!("[multitenant] disk-tier degradation: {e}");
    }
    (elapsed, stats)
}

fn tenant_json(case: &TenantCase, ten: &TenantStats, elapsed: f64, tiered: bool) -> Json {
    Json::obj([
        ("name", Json::from(ten.name.clone())),
        ("scenario", Json::from(case.scenario.name())),
        ("queries", Json::from(ten.queries)),
        ("qps", Json::from(ten.queries as f64 / elapsed)),
        ("p50_us", Json::from(ten.latency.p50_us)),
        ("p99_us", Json::from(ten.latency.p99_us)),
        ("mean_us", Json::from(ten.latency.mean_us)),
        (
            "pool_hit_rate",
            if tiered {
                Json::from(ten.pool_hit_rate())
            } else {
                Json::Null
            },
        ),
        ("switches", Json::from(ten.switches)),
        ("reorgs_completed", Json::from(ten.snapshots_published)),
        ("reorg_deferrals", Json::from(ten.reorg_deferrals)),
        ("max_deferred_queries", Json::from(ten.max_deferred_queries)),
        ("total_cost", Json::from(ten.ledger.total())),
    ])
}

/// The multi-tenant harness (`--tenants N`): one flash-crowd aggressor +
/// N−1 quiet co-tenants behind one engine. Asserts per-tenant ledger
/// parity against independent `oreo-sim` runs, measures the adversarial
/// co-tenant case with the α budget scheduler off and on, and gates on the
/// victim's p99 improving under the budget.
fn run_multitenant(
    n: usize,
    scale: Scale,
    tiered: bool,
    pool_mb: u64,
    json_path: Option<PathBuf>,
    obs: &ObsFlags,
) {
    let queries = multitenant_queries(scale);
    // The aggressor serves the zoo's adaptive MTS adversary: a stream
    // engineered so reorganizations barely pay for themselves. Deferring
    // its switches costs it almost nothing (the next drift arrives before
    // a layout amortizes) while *executing* them bills the shared serving
    // plane — builds, generation writes + fsync, pool invalidations. That
    // is exactly the tenant a global α budget exists to contain. It runs
    // *sparse* (a quarter of the co-tenants' query volume, spread evenly
    // via `stride`) so its own service footprint is bounded either way and
    // the two cells differ in rebuild interference, not in how much of the
    // CPU the aggressor's scans take.
    let crowd = Scenario::from_name("adversarial").expect("zoo scenario");
    let quiet = Scenario::from_name("diurnal").expect("zoo scenario");
    const CROWD_STRIDE: usize = 4;

    println!("== Multi-tenant serving: {n} tables, one engine, one α budget ==");
    println!(
        "scale: {} ({} rows/co-tenant, {} rows for the aggressor, {} queries/co-tenant, \
         {} for the aggressor, serve mode: {})",
        scale.label(),
        scale.rows(),
        scale.rows() * 8,
        queries,
        queries / CROWD_STRIDE,
        if tiered {
            format!("tiered, {pool_mb} MiB shared buffer pool")
        } else {
            "memory".into()
        },
    );
    println!(
        "tenant 0 \"crowd\" serves the {} stream (reorg-hungry aggressor); \
         tenants 1..{n} serve {} streams",
        crowd.name(),
        quiet.name(),
    );
    println!();

    let cases: Vec<TenantCase> = (0..n)
        .map(|i| {
            // The aggressor's table is eight times the co-tenants' (its
            // aside rewrites are eight times the work, and its scan costs
            // — hence its drift-driven switch benefits — scale with it) at
            // a short window and generation cadence: few queries, but each
            // window of them justifies another heavy rebuild of the big
            // table, each billing the same α as everyone else.
            let bundle = telemetry_bundle(
                if i == 0 {
                    scale.rows() * 8
                } else {
                    scale.rows()
                },
                1 + i as u64,
            );
            let config = if i == 0 {
                oreo_core::OreoConfig {
                    window: 50,
                    generation_interval: 50,
                    ..multitenant_config(3)
                }
            } else {
                multitenant_config(3 + i as u64)
            };
            let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config.clone());
            let scenario = if i == 0 { crowd } else { quiet };
            let stride = if i == 0 { CROWD_STRIDE } else { 1 };
            let inflight = if i == 0 { 1 } else { MT_INFLIGHT };
            let stream = zoo_stream(
                &setup,
                scenario,
                ScenarioConfig {
                    total_queries: queries / stride,
                    seed: 2 + i as u64,
                },
            );
            TenantCase {
                name: if i == 0 {
                    "crowd".into()
                } else {
                    format!("quiet-{i}")
                },
                scenario,
                bundle,
                config,
                stream,
                stride,
                inflight,
            }
        })
        .collect();

    // Per-tenant FIFO ledger parity: the N-tenant engine's interleaved
    // stream must leave every tenant's ledger byte-identical to an
    // independent sequential `oreo-sim` run of that tenant's substream —
    // co-tenancy changes the serving plane, never the bookkeeping.
    let parity_mode = serve_mode(tiered, "mt-parity");
    let (_, parity) = run_multitenant_cell(
        &cases,
        EngineConfig::sequential_parity()
            .with_mode(parity_mode.clone())
            .with_buffer_pool_bytes(pool_mb * 1024 * 1024),
        false,
    );
    cleanup(&parity_mode);
    let mut parity_ok = true;
    for (case, ten) in cases.iter().zip(&parity.tenants) {
        let setup = PolicySetup::new(case.bundle.clone(), Technique::QdTree, case.config.clone());
        let sim = run_policy(&mut setup.oreo(), &case.stream.queries, 0);
        let matches = ten.ledger == sim.ledger && ten.switches == sim.switches;
        parity_ok &= matches;
        println!(
            "ledger parity [{}]: {} (engine total {:.2}, sim total {:.2}, switches {} / {})",
            ten.name,
            if matches { "EXACT" } else { "MISMATCH" },
            ten.ledger.total(),
            sim.ledger.total(),
            ten.switches,
            sim.switches,
        );
    }
    assert!(
        parity_ok,
        "every tenant of the N-tenant engine must replay its independent oreo-sim run exactly"
    );
    println!();

    // The adversarial co-tenant case, measured twice: budget scheduler off
    // (every aggressor switch rebuilds immediately, stealing the serving
    // plane from the victims) vs on (admission paced by the global α
    // budget; deferred switches keep their guarantee via force-admission).
    let alpha = cases[0].config.alpha;
    let budget = ReorgBudget {
        fraction: 0.02,
        burst: alpha,
        max_defer_queries: (n * queries) as u64,
    };
    let mut cells: Vec<Json> = Vec::new();
    let mut victim_p99 = [0.0f64; 2];
    let mut budget_deferrals = 0u64;
    for (slot, with_budget) in [(0usize, false), (1usize, true)] {
        let label = if with_budget {
            "budget_on"
        } else {
            "budget_off"
        };
        let mode = serve_mode(tiered, &format!("mt-{label}"));
        let mut config = EngineConfig::default()
            .with_workers(2)
            .with_mode(mode.clone())
            .with_buffer_pool_bytes(pool_mb * 1024 * 1024)
            .with_obs(obs.cell_config(format!("mt-{label}")));
        if with_budget {
            config = config.with_budget(budget);
        }
        let (elapsed, stats) = run_multitenant_cell(&cases, config, true);
        cleanup(&mode);
        println!(
            "[{label}] {:.2}s, {} qps total, {} switches, {} reorgs completed in-run, \
             budget spent {:.0} of α·switches {:.0}",
            elapsed,
            fmt_f(stats.queries as f64 / elapsed, 0),
            stats.switches,
            stats.snapshots_published,
            stats.reorg_budget_spent,
            alpha * stats.switches as f64,
        );
        for ten in &stats.tenants {
            println!(
                "[{label}]   {:>8}: {:>7} qps, p50 {:>6} µs, p99 {:>7} µs, \
                 {} switches, {} deferrals (max {} queries deferred){}",
                ten.name,
                fmt_f(ten.queries as f64 / elapsed, 0),
                fmt_f(ten.latency.p50_us, 0),
                fmt_f(ten.latency.p99_us, 0),
                ten.switches,
                ten.reorg_deferrals,
                ten.max_deferred_queries,
                if tiered {
                    format!(", pool hit {:.1}%", ten.pool_hit_rate() * 100.0)
                } else {
                    String::new()
                },
            );
        }
        // The victim: the first quiet co-tenant sharing the engine with
        // the aggressor.
        victim_p99[slot] = stats.tenants[1].latency.p99_us;
        if with_budget {
            budget_deferrals = stats.tenants.iter().map(|t| t.reorg_deferrals).sum();
        }
        cells.push(Json::obj([
            ("budget", Json::from(with_budget)),
            ("elapsed_s", Json::from(elapsed)),
            ("qps_total", Json::from(stats.queries as f64 / elapsed)),
            ("switches", Json::from(stats.switches)),
            ("reorgs_completed", Json::from(stats.snapshots_published)),
            ("reorg_budget_spent", Json::from(stats.reorg_budget_spent)),
            (
                "pool_hit_rate",
                if tiered {
                    Json::from(stats.pool_hit_rate())
                } else {
                    Json::Null
                },
            ),
            (
                "tenants",
                Json::Arr(
                    cases
                        .iter()
                        .zip(&stats.tenants)
                        .map(|(c, t)| tenant_json(c, t, elapsed, tiered))
                        .collect(),
                ),
            ),
        ]));
    }

    let improvement = victim_p99[0] / victim_p99[1].max(1e-9);
    println!();
    println!(
        "victim (quiet-1) p99: {} µs without budget → {} µs with budget ({:.2}x)",
        fmt_f(victim_p99[0], 0),
        fmt_f(victim_p99[1], 0),
        improvement,
    );

    let doc = Json::obj([
        ("benchmark", Json::from("serve_multitenant")),
        ("scale", Json::from(scale.label())),
        (
            "serve_mode",
            Json::from(if tiered { "tiered" } else { "memory" }),
        ),
        (
            "buffer_pool_mb",
            if tiered {
                Json::from(pool_mb)
            } else {
                Json::Null
            },
        ),
        ("tenants", Json::from(n)),
        ("rows_per_tenant", Json::from(scale.rows())),
        ("queries_per_tenant", Json::from(queries)),
        ("alpha", Json::from(alpha)),
        ("ledger_parity_per_tenant", Json::from(parity_ok)),
        (
            "budget",
            Json::obj([
                ("fraction", Json::from(budget.fraction)),
                ("burst", Json::from(budget.burst)),
                ("max_defer_queries", Json::from(budget.max_defer_queries)),
            ]),
        ),
        ("victim", Json::from("quiet-1")),
        ("victim_p99_budget_off_us", Json::from(victim_p99[0])),
        ("victim_p99_budget_on_us", Json::from(victim_p99[1])),
        ("victim_p99_improvement", Json::from(improvement)),
        ("budget_deferrals", Json::from(budget_deferrals)),
        ("cells", Json::Arr(cells)),
    ]);
    let path = json_path.unwrap_or_else(|| PathBuf::from("BENCH_multitenant.json"));
    write_json_report(&path, &doc);

    // The harness's regression claims: the budget scheduler demonstrably
    // engaged (switches were deferred, yet every one still published), and
    // pacing the aggressor's heavy rebuilds under the global α budget
    // protected the victim's latency tail.
    assert!(
        budget_deferrals > 0,
        "the α budget scheduler never deferred a switch — the aggressor \
         case is not exercising admission control"
    );
    assert!(
        victim_p99[1] < victim_p99[0],
        "budget scheduler must improve the victim's p99 \
         (off {:.0} µs vs on {:.0} µs)",
        victim_p99[0],
        victim_p99[1],
    );
    println!(
        "multitenant ok: budget scheduler improves the victim's p99 ({improvement:.2}x), \
         {budget_deferrals} switch deferrals, every deferred switch still published"
    );
}
