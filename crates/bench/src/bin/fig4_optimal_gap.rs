//! **Fig. 4** — Gap to optimal algorithms: cumulative total cost over the
//! query stream for Offline Optimal, OREO, MTS Optimal, and Static on
//! TPC-H and TPC-DS (logical costs; Qd-tree layouts).
//!
//! The paper reports: OREO's query costs within 14–17% of MTS Optimal
//! (which gets a precomputed per-template state space), and 74%/44% larger
//! than Offline Optimal's; Offline Optimal makes one layout change per
//! template switch, OREO 22–29, MTS Optimal 27–30.

use oreo_bench::common::{banner, default_config, make_stream, Scale};
use oreo_sim::{fmt_f, fmt_pct_change, run_policy, AsciiTable, PolicySetup, Technique};
use oreo_workload::{tpcds_bundle, tpch_bundle};

fn main() {
    let scale = Scale::from_args();
    banner("Fig. 4: gap to optimal algorithms (logical costs)", scale);

    for bundle in [tpch_bundle(scale.rows(), 1), tpcds_bundle(scale.rows(), 1)] {
        let stream = make_stream(&bundle, scale, 2);
        let config = default_config(3);
        let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config);
        let layouts = setup.template_layouts(&stream);

        let sample_every = (scale.total_queries() / 10).max(1);
        let mut static_p = setup.static_policy(&stream.queries);
        let mut oreo = setup.oreo();
        let mut mts = setup.mts_optimal(&layouts);
        let mut offline = setup.offline_optimal(&layouts, &stream.segments);

        let r_static = run_policy(&mut static_p, &stream.queries, sample_every);
        let r_oreo = run_policy(&mut oreo, &stream.queries, sample_every);
        let r_mts = run_policy(&mut mts, &stream.queries, sample_every);
        let r_off = run_policy(&mut offline, &stream.queries, sample_every);

        println!("--- {} ---", bundle.name);
        println!(
            "template switch points: {:?}",
            stream.switch_points().iter().take(24).collect::<Vec<_>>()
        );

        // cumulative-cost series (the figure's four lines)
        let mut series = AsciiTable::new([
            "queries",
            "Offline Optimal",
            "OREO",
            "MTS Optimal",
            "Static",
        ]);
        for i in 0..r_oreo.trajectory.len() {
            series.row([
                r_oreo.trajectory[i].0.to_string(),
                fmt_f(r_off.trajectory[i].1, 0),
                fmt_f(r_oreo.trajectory[i].1, 0),
                fmt_f(r_mts.trajectory[i].1, 0),
                fmt_f(r_static.trajectory[i].1, 0),
            ]);
        }
        println!("{}", series.render());

        let mut summary = AsciiTable::new([
            "method",
            "query cost",
            "reorg cost",
            "total",
            "layout changes",
            "query vs MTS-Opt",
            "query vs Offline",
        ]);
        for r in [&r_off, &r_oreo, &r_mts, &r_static] {
            summary.row([
                r.name.clone(),
                fmt_f(r.ledger.query_cost, 0),
                fmt_f(r.ledger.reorg_cost, 0),
                fmt_f(r.total(), 0),
                r.switches.to_string(),
                fmt_pct_change(r_mts.ledger.query_cost, r.ledger.query_cost),
                fmt_pct_change(r_off.ledger.query_cost, r.ledger.query_cost),
            ]);
        }
        println!("{}", summary.render());
    }

    println!("(paper: OREO query costs within 14%/17% of MTS Optimal and 74%/44%");
    println!(" above Offline Optimal on TPC-H/TPC-DS; both far below the worst-case");
    println!(" O(log k) bound.)");
}
