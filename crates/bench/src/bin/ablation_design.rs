//! **Extension ablation** (not a paper figure): quantifies the design
//! choices DESIGN.md calls out, by toggling each off against the default
//! configuration on the TPC-H stream:
//!
//! * `stay_on_reset` — §IV-A: keep the current state at phase starts
//!   instead of the classic random re-draw;
//! * `mid_phase_admission` — §IV-C: median-initialized counters admit new
//!   layouts into the current phase instead of deferring a full phase;
//! * `sample_predictor` — §IV-C: jump draws biased by skipped fractions on
//!   the manager's R-TBS sample instead of last-phase weights only;
//! * `multi-copy cache` — Appendix D direction: keeping the last m
//!   materialized layouts turns cache-hit switches into cheap swaps.

use oreo_bench::common::{banner, default_config, make_stream, Scale};
use oreo_core::MultiCopyCache;
use oreo_sim::{fmt_f, fmt_pct_change, run_policy, AsciiTable, PolicySetup, Technique};
use oreo_workload::tpch_bundle;

fn main() {
    let scale = Scale::from_args();
    banner("Design-choice ablations (TPC-H, Qd-tree)", scale);

    let bundle = tpch_bundle(scale.rows(), 1);
    let stream = make_stream(&bundle, scale, 2);

    let run = |label: &str, mutate: &dyn Fn(&mut oreo_core::OreoConfig)| {
        let mut config = default_config(3);
        mutate(&mut config);
        let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config);
        let mut oreo = setup.oreo();
        let r = run_policy(&mut oreo, &stream.queries, 0);
        (label.to_string(), r)
    };

    let variants: Vec<(String, oreo_sim::RunResult)> = vec![
        run("default *", &|_| {}),
        run("no stay_on_reset", &|c| c.stay_on_reset = false),
        run("no mid_phase_admission", &|c| c.mid_phase_admission = false),
        run("no sample_predictor", &|c| c.sample_predictor = false),
        run("classic Alg.4 (all off)", &|c| {
            c.stay_on_reset = false;
            c.mid_phase_admission = false;
            c.sample_predictor = false;
        }),
    ];

    let base = variants[0].1.total();
    let mut table = AsciiTable::new([
        "variant",
        "query cost",
        "reorg cost",
        "total",
        "vs default",
        "switches",
    ]);
    for (label, r) in &variants {
        table.row([
            label.clone(),
            fmt_f(r.ledger.query_cost, 0),
            fmt_f(r.ledger.reorg_cost, 0),
            fmt_f(r.total(), 0),
            fmt_pct_change(base, r.total()),
            r.switches.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Multi-copy cache: replay the default run's switch sequence through
    // LRU caches of increasing capacity (β = α/40 swap cost).
    println!("--- multi-copy layout cache (Appendix D direction) ---");
    let mut config = default_config(3);
    config.max_states = None;
    let setup = PolicySetup::new(bundle.clone(), Technique::QdTree, config.clone());
    let mut oreo = setup.oreo();
    let mut switch_targets = Vec::new();
    for q in &stream.queries {
        let step = oreo.framework_observe(q);
        if let Some(t) = step {
            switch_targets.push(t);
        }
    }
    let alpha = config.alpha;
    let beta = alpha / 40.0;
    let mut table = AsciiTable::new(["copies m", "reorg cost", "hits", "rebuilds", "vs m=1"]);
    let single = switch_targets.len() as f64 * alpha;
    for m in [1usize, 2, 3, 4] {
        let mut cache = MultiCopyCache::new(m, alpha, beta, 0);
        let cost: f64 = switch_targets.iter().map(|&t| cache.charge_switch(t)).sum();
        table.row([
            m.to_string(),
            fmt_f(cost, 0),
            cache.hits().to_string(),
            cache.misses().to_string(),
            fmt_pct_change(single, cost),
        ]);
    }
    println!("{}", table.render());
}

/// Tiny adapter: expose switch decisions from the framework run.
trait FrameworkObserve {
    fn framework_observe(&mut self, q: &oreo_query::Query) -> Option<u64>;
}

impl FrameworkObserve for oreo_sim::OreoPolicy {
    fn framework_observe(&mut self, q: &oreo_query::Query) -> Option<u64> {
        use oreo_sim::ReorgPolicy;
        let before = self.switches();
        let _ = self.observe(q);
        if self.switches() > before {
            Some(self.framework().logical_layout())
        } else {
            None
        }
    }
}
