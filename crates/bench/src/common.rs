//! Shared harness plumbing: scales, configs, and run helpers used by every
//! experiment binary.

use oreo_core::OreoConfig;
use oreo_sim::{run_policy, PolicySetup, ReorgPolicy, RunResult, Technique};
use oreo_workload::{DatasetBundle, QueryStream, StreamConfig};
use std::fmt::Write as _;

/// Experiment scale, toggled by `--quick` on every binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced pass for smoke runs and CI: 8 000 queries, 10 segments.
    Quick,
    /// The paper's setup: 30 000 queries, 20 segments.
    Full,
}

impl Scale {
    /// Parse from CLI args (`--quick` selects [`Scale::Quick`]; default is
    /// the paper-scale run).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Stream length for this scale.
    pub fn total_queries(self) -> usize {
        match self {
            Scale::Quick => 8_000,
            Scale::Full => 30_000,
        }
    }

    /// Number of workload-drift segments in the stream.
    pub fn segments(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Full => 20,
        }
    }

    /// Dataset rows (our laptop-scale substitute for SF100/SF10).
    pub fn rows(self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 30_000,
        }
    }

    /// Human-readable name for report headers.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full (paper-scale)",
        }
    }
}

/// The defaults every harness starts from (§VI-A3: α=80, ε=0.08, γ=1,
/// window = 200 recent queries; partition count scaled to our substrate).
pub fn default_config(seed: u64) -> OreoConfig {
    OreoConfig {
        alpha: 80.0,
        epsilon: 0.08,
        gamma: 1.0,
        window: 200,
        generation_interval: 200,
        partitions: 64,
        data_sample_rows: 6_000,
        seed,
        ..Default::default()
    }
}

/// The default drifting stream for a bundle at a scale.
pub fn make_stream(bundle: &DatasetBundle, scale: Scale, seed: u64) -> QueryStream {
    bundle.stream(StreamConfig {
        total_queries: scale.total_queries(),
        segments: scale.segments(),
        seed,
        ..Default::default()
    })
}

/// Run one policy over a stream with no trajectory sampling.
pub fn run(policy: &mut dyn ReorgPolicy, stream: &QueryStream) -> RunResult {
    run_policy(policy, &stream.queries, 0)
}

/// Assemble the four Fig. 3 policies and run them over `stream`.
/// Returns results in order: Static, OREO, Greedy, Regret.
pub fn run_fig3_policies(setup: &PolicySetup, stream: &QueryStream) -> Vec<RunResult> {
    let mut static_p = setup.static_policy(&stream.queries);
    let mut oreo = setup.oreo();
    let mut greedy = setup.greedy();
    let mut regret = setup.regret();
    vec![
        run(&mut static_p, stream),
        run(&mut oreo, stream),
        run(&mut greedy, stream),
        run(&mut regret, stream),
    ]
}

/// All (dataset, technique) cells of Fig. 3.
pub fn fig3_grid(scale: Scale, seed: u64) -> Vec<(DatasetBundle, Technique)> {
    let mut out = Vec::new();
    for bundle in oreo_workload::all_bundles(scale.rows(), seed) {
        for technique in [Technique::QdTree, Technique::ZOrder] {
            out.push((bundle.clone(), technique));
        }
    }
    out
}

/// A JSON value for machine-readable benchmark output. The workspace has no
/// registry access (so no `serde_json`); benchmark payloads are flat enough
/// that this tiny emitter suffices for tracking `BENCH_*.json` perf
/// trajectories across PRs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (non-finite values emit as `null` per JSON's grammar).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write_into(out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Parse `--json <path>` from the CLI args, if present.
pub fn json_path_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

/// Write a JSON report to `path` (creating parent directories) and echo
/// where it went.
pub fn write_json_report(path: &std::path::Path, value: &Json) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(path, value.render() + "\n") {
        Ok(()) => println!("(json report written to {})", path.display()),
        Err(e) => eprintln!("failed to write json report to {}: {e}", path.display()),
    }
}

/// Print the standard harness banner.
pub fn banner(what: &str, scale: Scale) {
    println!("== {what} ==");
    println!(
        "scale: {} ({} queries, {} segments, {} rows/table)",
        scale.label(),
        scale.total_queries(),
        scale.segments(),
        scale.rows()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_workload::tpch_bundle;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.total_queries() < Scale::Full.total_queries());
        assert!(Scale::Quick.segments() <= Scale::Full.segments());
        assert_eq!(Scale::Full.total_queries(), 30_000, "paper scale");
        assert_eq!(Scale::Full.segments(), 20, "paper scale");
    }

    #[test]
    fn default_config_matches_paper_defaults() {
        let c = default_config(1);
        assert_eq!(c.alpha, 80.0);
        assert_eq!(c.epsilon, 0.08);
        assert_eq!(c.gamma, 1.0);
        assert_eq!(c.window, 200);
    }

    #[test]
    fn fig3_grid_covers_all_cells() {
        let grid = fig3_grid(Scale::Quick, 1);
        assert_eq!(grid.len(), 6, "3 datasets × 2 techniques");
        let qd = grid
            .iter()
            .filter(|(_, t)| *t == oreo_sim::Technique::QdTree)
            .count();
        assert_eq!(qd, 3);
    }

    #[test]
    fn json_renders_escaped_and_nested() {
        let j = Json::obj([
            ("name", Json::from("fig3 \"quick\"\n")),
            ("qps", Json::from(1234.5)),
            ("count", Json::from(8u64)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("rows", Json::Arr(vec![Json::from(1.0), Json::from(2.5)])),
        ]);
        assert_eq!(
            j.render(),
            "{\"name\":\"fig3 \\\"quick\\\"\\n\",\"qps\":1234.5,\"count\":8,\
             \"ok\":true,\"none\":null,\"rows\":[1,2.5]}"
        );
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let bundle = tpch_bundle(1_000, 1);
        let a = make_stream(&bundle, Scale::Quick, 7);
        let b = make_stream(&bundle, Scale::Quick, 7);
        assert_eq!(a.queries.len(), Scale::Quick.total_queries());
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.queries[100], b.queries[100]);
    }
}
