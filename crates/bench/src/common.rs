//! Shared harness plumbing: scales, configs, and run helpers used by every
//! experiment binary.

use oreo_core::OreoConfig;
use oreo_sim::{run_policy, PolicySetup, ReorgPolicy, RunResult, Technique};
use oreo_workload::{DatasetBundle, QueryStream, StreamConfig};

/// Experiment scale, toggled by `--quick` on every binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced pass for smoke runs and CI: 8 000 queries, 10 segments.
    Quick,
    /// The paper's setup: 30 000 queries, 20 segments.
    Full,
}

impl Scale {
    /// Parse from CLI args (`--quick` selects [`Scale::Quick`]; default is
    /// the paper-scale run).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Stream length for this scale.
    pub fn total_queries(self) -> usize {
        match self {
            Scale::Quick => 8_000,
            Scale::Full => 30_000,
        }
    }

    /// Number of workload-drift segments in the stream.
    pub fn segments(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Full => 20,
        }
    }

    /// Dataset rows (our laptop-scale substitute for SF100/SF10).
    pub fn rows(self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 30_000,
        }
    }

    /// Human-readable name for report headers.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full (paper-scale)",
        }
    }
}

/// The defaults every harness starts from (§VI-A3: α=80, ε=0.08, γ=1,
/// window = 200 recent queries; partition count scaled to our substrate).
pub fn default_config(seed: u64) -> OreoConfig {
    OreoConfig {
        alpha: 80.0,
        epsilon: 0.08,
        gamma: 1.0,
        window: 200,
        generation_interval: 200,
        partitions: 64,
        data_sample_rows: 6_000,
        seed,
        ..Default::default()
    }
}

/// The default drifting stream for a bundle at a scale.
pub fn make_stream(bundle: &DatasetBundle, scale: Scale, seed: u64) -> QueryStream {
    bundle.stream(StreamConfig {
        total_queries: scale.total_queries(),
        segments: scale.segments(),
        seed,
        ..Default::default()
    })
}

/// Run one policy over a stream with no trajectory sampling.
pub fn run(policy: &mut dyn ReorgPolicy, stream: &QueryStream) -> RunResult {
    run_policy(policy, &stream.queries, 0)
}

/// Assemble the four Fig. 3 policies and run them over `stream`.
/// Returns results in order: Static, OREO, Greedy, Regret.
pub fn run_fig3_policies(setup: &PolicySetup, stream: &QueryStream) -> Vec<RunResult> {
    let mut static_p = setup.static_policy(&stream.queries);
    let mut oreo = setup.oreo();
    let mut greedy = setup.greedy();
    let mut regret = setup.regret();
    vec![
        run(&mut static_p, stream),
        run(&mut oreo, stream),
        run(&mut greedy, stream),
        run(&mut regret, stream),
    ]
}

/// All (dataset, technique) cells of Fig. 3.
pub fn fig3_grid(scale: Scale, seed: u64) -> Vec<(DatasetBundle, Technique)> {
    let mut out = Vec::new();
    for bundle in oreo_workload::all_bundles(scale.rows(), seed) {
        for technique in [Technique::QdTree, Technique::ZOrder] {
            out.push((bundle.clone(), technique));
        }
    }
    out
}

/// Print the standard harness banner.
pub fn banner(what: &str, scale: Scale) {
    println!("== {what} ==");
    println!(
        "scale: {} ({} queries, {} segments, {} rows/table)",
        scale.label(),
        scale.total_queries(),
        scale.segments(),
        scale.rows()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_workload::tpch_bundle;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.total_queries() < Scale::Full.total_queries());
        assert!(Scale::Quick.segments() <= Scale::Full.segments());
        assert_eq!(Scale::Full.total_queries(), 30_000, "paper scale");
        assert_eq!(Scale::Full.segments(), 20, "paper scale");
    }

    #[test]
    fn default_config_matches_paper_defaults() {
        let c = default_config(1);
        assert_eq!(c.alpha, 80.0);
        assert_eq!(c.epsilon, 0.08);
        assert_eq!(c.gamma, 1.0);
        assert_eq!(c.window, 200);
    }

    #[test]
    fn fig3_grid_covers_all_cells() {
        let grid = fig3_grid(Scale::Quick, 1);
        assert_eq!(grid.len(), 6, "3 datasets × 2 techniques");
        let qd = grid
            .iter()
            .filter(|(_, t)| *t == oreo_sim::Technique::QdTree)
            .count();
        assert_eq!(qd, 3);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let bundle = tpch_bundle(1_000, 1);
        let a = make_stream(&bundle, Scale::Quick, 7);
        let b = make_stream(&bundle, Scale::Quick, 7);
        assert_eq!(a.queries.len(), Scale::Quick.total_queries());
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.queries[100], b.queries[100]);
    }
}
