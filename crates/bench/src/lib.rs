//! # oreo-bench
//!
//! Benchmark harnesses reproducing **every table and figure** of the
//! paper's evaluation (§VI), plus Criterion microbenchmarks of the hot
//! paths. One binary per experiment:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3_end_to_end`  | Fig. 3 — end-to-end query + reorg time, 4 methods × 2 techniques × 3 datasets |
//! | `fig4_optimal_gap` | Fig. 4 — cumulative cost vs MTS-Optimal / Offline-Optimal / Static |
//! | `fig5_alpha_sweep` | Fig. 5 — effect of the reorganization cost α |
//! | `fig6_epsilon`     | Fig. 6 — effect of the admission threshold ε |
//! | `table1_alpha`     | Table I — physically measured α on the disk substrate |
//! | `table2_ablations` | Table II — γ, SW/RS/SW+RS, and reorganization delay Δ |
//! | `serve_throughput` | Beyond the paper — the concurrent engine's qps + p50/p99 at 1/2/4/8 workers, with/without background reorganization |
//!
//! Run with `--quick` for a reduced-scale pass (fewer queries); the default
//! reproduces the paper's 30 000-query streams. `fig3_end_to_end` and
//! `serve_throughput` also accept `--json <path>` for machine-readable
//! reports (see [`common::Json`]).

pub mod common;
