//! Queries and the fluent builder used by workload generators and examples.

use crate::predicate::{Atom, CompareOp, Predicate};
use crate::schema::Schema;
use crate::value::Scalar;
use serde::{Deserialize, Serialize};

/// Identifier of the template a query was generated from. Workload drift is
/// modeled as the stream switching templates; several evaluation harnesses
/// (Fig. 4's vertical lines, the MTS-Optimal and Offline-Optimal baselines)
/// need to know which template produced a query.
pub type TemplateId = u32;

/// A single query in the stream.
///
/// OREO never executes SQL; the only part of a query that matters to layout
/// optimization is its conjunctive predicate (which partitions can be
/// skipped) plus bookkeeping: arrival order and provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Position in the stream (0-based).
    pub seq: u64,
    /// Template that generated this query, if any.
    pub template: Option<TemplateId>,
    /// The filter.
    pub predicate: Predicate,
}

impl Query {
    /// A query with just a predicate; `seq` assigned later by the stream.
    pub fn new(predicate: Predicate) -> Self {
        Self {
            seq: 0,
            template: None,
            predicate,
        }
    }

    /// Attach a sequence number.
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    /// Attach a template id.
    pub fn with_template(mut self, t: TemplateId) -> Self {
        self.template = Some(t);
        self
    }

    /// A full-scan query (always-true predicate).
    pub fn full_scan() -> Self {
        Self::new(Predicate::always_true())
    }
}

/// Fluent builder resolving column names against a [`Schema`].
///
/// ```
/// use oreo_query::{QueryBuilder, Schema, ColumnType};
/// let schema = Schema::from_pairs([
///     ("ship_date", ColumnType::Timestamp),
///     ("qty", ColumnType::Int),
///     ("region", ColumnType::Str),
/// ]);
/// let q = QueryBuilder::new(&schema)
///     .between("ship_date", 100, 200)
///     .lt("qty", 24)
///     .eq("region", "apac")
///     .build();
/// assert_eq!(q.predicate.len(), 3);
/// ```
pub struct QueryBuilder<'a> {
    schema: &'a Schema,
    atoms: Vec<Atom>,
}

impl<'a> QueryBuilder<'a> {
    /// A builder over `schema` with no atoms yet.
    pub fn new(schema: &'a Schema) -> Self {
        Self {
            schema,
            atoms: Vec::new(),
        }
    }

    fn compare(mut self, col: &str, op: CompareOp, value: impl Into<Scalar>) -> Self {
        let col = self.schema.col_or_panic(col);
        let value = value.into();
        debug_assert!(
            value.compatible_with(self.schema.column_type(col)),
            "literal {value} incompatible with column {}",
            self.schema.column(col).name
        );
        self.atoms.push(Atom::Compare { col, op, value });
        self
    }

    /// `col < value`
    pub fn lt(self, col: &str, value: impl Into<Scalar>) -> Self {
        self.compare(col, CompareOp::Lt, value)
    }

    /// `col <= value`
    pub fn le(self, col: &str, value: impl Into<Scalar>) -> Self {
        self.compare(col, CompareOp::Le, value)
    }

    /// `col > value`
    pub fn gt(self, col: &str, value: impl Into<Scalar>) -> Self {
        self.compare(col, CompareOp::Gt, value)
    }

    /// `col >= value`
    pub fn ge(self, col: &str, value: impl Into<Scalar>) -> Self {
        self.compare(col, CompareOp::Ge, value)
    }

    /// `col = value`
    pub fn eq(self, col: &str, value: impl Into<Scalar>) -> Self {
        self.compare(col, CompareOp::Eq, value)
    }

    /// `col BETWEEN low AND high` (inclusive).
    pub fn between(mut self, col: &str, low: impl Into<Scalar>, high: impl Into<Scalar>) -> Self {
        let col = self.schema.col_or_panic(col);
        let (low, high) = (low.into(), high.into());
        debug_assert!(low <= high, "BETWEEN bounds inverted");
        self.atoms.push(Atom::Between { col, low, high });
        self
    }

    /// `col IN (values...)`
    pub fn in_set<V: Into<Scalar>>(
        mut self,
        col: &str,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        let col = self.schema.col_or_panic(col);
        self.atoms.push(Atom::InSet {
            col,
            set: values.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Finish, producing a [`Query`].
    pub fn build(self) -> Query {
        Query::new(Predicate::new(self.atoms))
    }

    /// Finish, producing just the [`Predicate`].
    pub fn build_predicate(self) -> Predicate {
        Predicate::new(self.atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("qty", ColumnType::Int),
            ("region", ColumnType::Str),
        ])
    }

    #[test]
    fn builder_resolves_columns() {
        let s = schema();
        let q = QueryBuilder::new(&s)
            .between("ts", 0, 10)
            .ge("qty", 5)
            .in_set("region", ["eu", "na"])
            .build();
        assert_eq!(q.predicate.columns(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn builder_rejects_unknown_column() {
        let s = schema();
        QueryBuilder::new(&s).eq("nope", 1).build();
    }

    #[test]
    fn query_metadata_attaches() {
        let q = Query::full_scan().with_seq(42).with_template(7);
        assert_eq!(q.seq, 42);
        assert_eq!(q.template, Some(7));
        assert!(q.predicate.is_empty());
    }
}
