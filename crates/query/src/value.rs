//! Scalar values and column types.
//!
//! OREO's cost model only ever compares values *within* a single column, so
//! [`Scalar`] defines a total order that is meaningful per column type.
//! Cross-type comparisons fall back to a fixed type-tag order so scalars can
//! live in ordered collections; callers that care should check
//! [`Scalar::same_type`] first (all internal call sites do).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Logical type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float, ordered with `total_cmp`.
    Float,
    /// Categorical string (dictionary-encoded by the storage layer).
    Str,
    /// Timestamp stored as an `i64` (e.g. seconds since an epoch); behaves
    /// like [`ColumnType::Int`] for comparison and pruning purposes but lets
    /// generators and pretty-printers know the column carries time semantics.
    Timestamp,
}

impl ColumnType {
    /// Whether values of this type are stored as `i64` internally.
    pub fn is_int_backed(self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Timestamp)
    }

    /// Whether this type is categorical (no meaningful ordering for ranges,
    /// pruned via distinct sets).
    pub fn is_categorical(self) -> bool {
        matches!(self, ColumnType::Str)
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
            ColumnType::Timestamp => "timestamp",
        };
        f.write_str(s)
    }
}

/// A single typed value: the literal side of a predicate, or one cell of a
/// row when routing records through a layout.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Scalar {
    /// A 64-bit integer (also carries dates/timestamps as epoch offsets).
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An owned string.
    Str(String),
}

impl Scalar {
    /// The column type this scalar naturally belongs to. `Timestamp` columns
    /// use [`Scalar::Int`] values.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Scalar::Int(_) => ColumnType::Int,
            Scalar::Float(_) => ColumnType::Float,
            Scalar::Str(_) => ColumnType::Str,
        }
    }

    /// True when `self` and `other` carry the same runtime type.
    pub fn same_type(&self, other: &Scalar) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
    }

    /// True when this scalar is a valid literal for a column of type `ty`.
    pub fn compatible_with(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Scalar::Int(_), ColumnType::Int | ColumnType::Timestamp)
                | (Scalar::Float(_), ColumnType::Float)
                | (Scalar::Str(_), ColumnType::Str)
        )
    }

    /// Integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Scalar::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float payload, if any.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Scalar::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(v) => Some(v),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Scalar::Int(_) => 0,
            Scalar::Float(_) => 1,
            Scalar::Str(_) => 2,
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int(v)
    }
}

impl From<i32> for Scalar {
    fn from(v: i32) -> Self {
        Scalar::Int(v as i64)
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float(v)
    }
}

impl From<&str> for Scalar {
    fn from(v: &str) -> Self {
        Scalar::Str(v.to_owned())
    }
}

impl From<String> for Scalar {
    fn from(v: String) -> Self {
        Scalar::Str(v)
    }
}

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Scalar {}

impl PartialOrd for Scalar {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scalar {
    /// Total order: within a type, the natural order (floats via
    /// `total_cmp`); across types, a fixed tag order (`Int < Float < Str`).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Scalar::Int(a), Scalar::Int(b)) => a.cmp(b),
            (Scalar::Float(a), Scalar::Float(b)) => a.total_cmp(b),
            (Scalar::Str(a), Scalar::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Scalar {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Scalar::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Scalar::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Scalar::Str(v) => {
                2u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int(v) => write!(f, "{v}"),
            Scalar::Float(v) => write!(f, "{v}"),
            Scalar::Str(v) => write!(f, "'{v}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_order_is_natural() {
        assert!(Scalar::Int(1) < Scalar::Int(2));
        assert_eq!(Scalar::Int(5), Scalar::Int(5));
    }

    #[test]
    fn float_order_handles_nan_via_total_cmp() {
        let nan = Scalar::Float(f64::NAN);
        let one = Scalar::Float(1.0);
        // total_cmp puts NaN above all ordinary values.
        assert!(nan > one);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn str_order_is_lexicographic() {
        assert!(Scalar::from("apple") < Scalar::from("banana"));
    }

    #[test]
    fn cross_type_order_is_by_tag() {
        assert!(Scalar::Int(i64::MAX) < Scalar::Float(f64::NEG_INFINITY));
        assert!(Scalar::Float(f64::INFINITY) < Scalar::from(""));
    }

    #[test]
    fn compatibility_matrix() {
        assert!(Scalar::Int(3).compatible_with(ColumnType::Int));
        assert!(Scalar::Int(3).compatible_with(ColumnType::Timestamp));
        assert!(!Scalar::Int(3).compatible_with(ColumnType::Float));
        assert!(Scalar::Float(1.0).compatible_with(ColumnType::Float));
        assert!(Scalar::from("x").compatible_with(ColumnType::Str));
        assert!(!Scalar::from("x").compatible_with(ColumnType::Int));
    }

    #[test]
    fn negative_zero_and_zero_are_distinct_under_total_cmp() {
        assert!(Scalar::Float(-0.0) < Scalar::Float(0.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Scalar::Int(7).to_string(), "7");
        assert_eq!(Scalar::from("eu").to_string(), "'eu'");
    }

    #[test]
    fn hash_distinguishes_types() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Scalar::Int(1));
        set.insert(Scalar::Float(1.0));
        set.insert(Scalar::from("1"));
        assert_eq!(set.len(), 3);
    }
}
