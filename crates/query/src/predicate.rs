//! Predicate AST and its two evaluation surfaces.
//!
//! Predicates are conjunctions of per-column atoms (the fragment used by
//! partition pruning in Qd-tree-style systems; see Fig. 2 of the paper).
//! Every atom supports:
//!
//! * **row evaluation** — does a concrete value satisfy the atom; and
//! * **pruning evaluation** — *might* any value inside a partition's
//!   min/max range (or distinct set, for categoricals) satisfy the atom.
//!
//! Pruning is conservative: `may_match_* == false` guarantees no row in the
//! partition matches, which is exactly the soundness condition data skipping
//! needs.

use crate::schema::{ColId, Schema};
use crate::value::Scalar;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators for [`Atom::Compare`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
}

impl CompareOp {
    /// Evaluate `lhs <op> rhs`.
    pub fn eval(self, lhs: &Scalar, rhs: &Scalar) -> bool {
        match self {
            CompareOp::Lt => lhs < rhs,
            CompareOp::Le => lhs <= rhs,
            CompareOp::Gt => lhs > rhs,
            CompareOp::Ge => lhs >= rhs,
            CompareOp::Eq => lhs == rhs,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::Eq => "=",
        };
        f.write_str(s)
    }
}

/// A single-column condition.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Atom {
    /// `col <op> value`.
    Compare {
        /// The constrained column.
        col: ColId,
        /// The comparison operator.
        op: CompareOp,
        /// The literal compared against.
        value: Scalar,
    },
    /// `col BETWEEN low AND high` (inclusive on both ends).
    Between {
        /// The constrained column.
        col: ColId,
        /// Lower bound (inclusive).
        low: Scalar,
        /// Upper bound (inclusive).
        high: Scalar,
    },
    /// `col IN (set)`. Sets are small (query literals), stored sorted.
    InSet {
        /// The constrained column.
        col: ColId,
        /// The sorted membership literals.
        set: Vec<Scalar>,
    },
}

impl Atom {
    /// The column this atom constrains.
    pub fn col(&self) -> ColId {
        match self {
            Atom::Compare { col, .. } | Atom::Between { col, .. } | Atom::InSet { col, .. } => *col,
        }
    }

    /// Row evaluation: does `value` (the row's cell for this atom's column)
    /// satisfy the condition?
    ///
    /// `InSet` membership is a linear scan: query literal sets are tiny and
    /// this stays correct even for hand-built atoms whose sets were never
    /// normalized (sorted) by [`Predicate::new`].
    pub fn matches(&self, value: &Scalar) -> bool {
        match self {
            Atom::Compare { op, value: rhs, .. } => op.eval(value, rhs),
            Atom::Between { low, high, .. } => value >= low && value <= high,
            Atom::InSet { set, .. } => set.iter().any(|s| s == value),
        }
    }

    /// Pruning evaluation against a partition's `[min, max]` range for this
    /// column. Returns `true` if *some* value in the range could satisfy the
    /// atom (so the partition must be read), `false` if the partition can be
    /// skipped.
    pub fn may_match_range(&self, min: &Scalar, max: &Scalar) -> bool {
        debug_assert!(min <= max, "partition range inverted");
        match self {
            Atom::Compare { op, value, .. } => match op {
                CompareOp::Lt => min < value,
                CompareOp::Le => min <= value,
                CompareOp::Gt => max > value,
                CompareOp::Ge => max >= value,
                CompareOp::Eq => min <= value && value <= max,
            },
            Atom::Between { low, high, .. } => !(high < min || low > max),
            Atom::InSet { set, .. } => set.iter().any(|v| v >= min && v <= max),
        }
    }

    /// Pruning evaluation against a partition's exact distinct-value set
    /// (kept for low-cardinality categorical columns).
    pub fn may_match_set(&self, distinct: &BTreeSet<Scalar>) -> bool {
        match self {
            Atom::Compare { op, value, .. } => match op {
                // Ordered ops on a distinct set only need the extremes.
                CompareOp::Lt => distinct.iter().next().is_some_and(|min| min < value),
                CompareOp::Le => distinct.iter().next().is_some_and(|min| min <= value),
                CompareOp::Gt => distinct.iter().next_back().is_some_and(|max| max > value),
                CompareOp::Ge => distinct.iter().next_back().is_some_and(|max| max >= value),
                CompareOp::Eq => distinct.contains(value),
            },
            Atom::Between { low, high, .. } => {
                distinct.range(low.clone()..=high.clone()).next().is_some()
            }
            Atom::InSet { set, .. } => set.iter().any(|v| distinct.contains(v)),
        }
    }

    /// Render with column names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Atom, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let name = |c: ColId| &self.1.column(c).name;
                match self.0 {
                    Atom::Compare { col, op, value } => {
                        write!(f, "{} {} {}", name(*col), op, value)
                    }
                    Atom::Between { col, low, high } => {
                        write!(f, "{} BETWEEN {} AND {}", name(*col), low, high)
                    }
                    Atom::InSet { col, set } => {
                        write!(f, "{} IN (", name(*col))?;
                        for (i, v) in set.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{v}")?;
                        }
                        write!(f, ")")
                    }
                }
            }
        }
        D(self, schema)
    }
}

/// A conjunction of atoms. The empty predicate matches everything (a full
/// scan), mirroring how a query with no prunable predicates behaves.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    atoms: Vec<Atom>,
}

impl Predicate {
    /// An always-true predicate (full scan).
    pub fn always_true() -> Self {
        Self::default()
    }

    /// Build from atoms. `InSet` sets are sorted for binary search; the atom
    /// list is kept in insertion order.
    pub fn new(mut atoms: Vec<Atom>) -> Self {
        for a in &mut atoms {
            if let Atom::InSet { set, .. } = a {
                set.sort();
                set.dedup();
            }
        }
        Self { atoms }
    }

    /// The conjunction's atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True for the always-true predicate.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Append an atom.
    pub fn push(&mut self, atom: Atom) {
        self.atoms.push(atom);
        if let Some(Atom::InSet { set, .. }) = self.atoms.last_mut() {
            set.sort();
            set.dedup();
        }
    }

    /// Distinct columns referenced by the predicate, in first-use order.
    pub fn columns(&self) -> Vec<ColId> {
        let mut out = Vec::new();
        for a in &self.atoms {
            let c = a.col();
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Row evaluation: `row(col)` must return the row's value for `col`.
    pub fn matches_with(&self, mut row: impl FnMut(ColId) -> Scalar) -> bool {
        self.atoms.iter().all(|a| a.matches(&row(a.col())))
    }

    /// Render with column names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Predicate, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.atoms.is_empty() {
                    return write!(f, "TRUE");
                }
                for (i, a) in self.0.atoms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{}", a.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btree(vals: &[&str]) -> BTreeSet<Scalar> {
        vals.iter().map(|v| Scalar::from(*v)).collect()
    }

    #[test]
    fn compare_ops_row_eval() {
        let v = Scalar::Int(10);
        assert!(CompareOp::Lt.eval(&v, &Scalar::Int(11)));
        assert!(!CompareOp::Lt.eval(&v, &Scalar::Int(10)));
        assert!(CompareOp::Le.eval(&v, &Scalar::Int(10)));
        assert!(CompareOp::Gt.eval(&v, &Scalar::Int(9)));
        assert!(CompareOp::Ge.eval(&v, &Scalar::Int(10)));
        assert!(CompareOp::Eq.eval(&v, &Scalar::Int(10)));
    }

    #[test]
    fn between_is_inclusive() {
        let a = Atom::Between {
            col: 0,
            low: Scalar::Int(5),
            high: Scalar::Int(7),
        };
        assert!(a.matches(&Scalar::Int(5)));
        assert!(a.matches(&Scalar::Int(7)));
        assert!(!a.matches(&Scalar::Int(8)));
        assert!(!a.matches(&Scalar::Int(4)));
    }

    #[test]
    fn in_set_uses_sorted_search() {
        let p = Predicate::new(vec![Atom::InSet {
            col: 0,
            set: vec![Scalar::from("c"), Scalar::from("a"), Scalar::from("a")],
        }]);
        let Atom::InSet { set, .. } = &p.atoms()[0] else {
            panic!()
        };
        assert_eq!(set.len(), 2, "dedup");
        assert!(p.atoms()[0].matches(&Scalar::from("a")));
        assert!(!p.atoms()[0].matches(&Scalar::from("b")));
    }

    #[test]
    fn range_pruning_lt_le() {
        let lt = Atom::Compare {
            col: 0,
            op: CompareOp::Lt,
            value: Scalar::Int(10),
        };
        // Partition [10, 20]: nothing < 10 inside.
        assert!(!lt.may_match_range(&Scalar::Int(10), &Scalar::Int(20)));
        // Partition [9, 20]: 9 < 10.
        assert!(lt.may_match_range(&Scalar::Int(9), &Scalar::Int(20)));
        let le = Atom::Compare {
            col: 0,
            op: CompareOp::Le,
            value: Scalar::Int(10),
        };
        assert!(le.may_match_range(&Scalar::Int(10), &Scalar::Int(20)));
    }

    #[test]
    fn range_pruning_eq_and_between() {
        let eq = Atom::Compare {
            col: 0,
            op: CompareOp::Eq,
            value: Scalar::Int(15),
        };
        assert!(eq.may_match_range(&Scalar::Int(10), &Scalar::Int(20)));
        assert!(!eq.may_match_range(&Scalar::Int(16), &Scalar::Int(20)));

        let between = Atom::Between {
            col: 0,
            low: Scalar::Int(1),
            high: Scalar::Int(4),
        };
        assert!(!between.may_match_range(&Scalar::Int(5), &Scalar::Int(9)));
        assert!(between.may_match_range(&Scalar::Int(4), &Scalar::Int(9)));
    }

    #[test]
    fn set_pruning() {
        let distinct = btree(&["emea", "apac"]);
        let eq = Atom::Compare {
            col: 0,
            op: CompareOp::Eq,
            value: Scalar::from("amer"),
        };
        assert!(!eq.may_match_set(&distinct));
        let inset = Atom::InSet {
            col: 0,
            set: vec![Scalar::from("amer"), Scalar::from("apac")],
        };
        assert!(inset.may_match_set(&distinct));
        let between = Atom::Between {
            col: 0,
            low: Scalar::from("a"),
            high: Scalar::from("b"),
        };
        assert!(between.may_match_set(&distinct)); // "apac" in [a, b]
    }

    #[test]
    fn empty_set_prunes_everything() {
        let distinct: BTreeSet<Scalar> = BTreeSet::new();
        for atom in [
            Atom::Compare {
                col: 0,
                op: CompareOp::Lt,
                value: Scalar::from("z"),
            },
            Atom::Compare {
                col: 0,
                op: CompareOp::Ge,
                value: Scalar::from("a"),
            },
        ] {
            assert!(!atom.may_match_set(&distinct));
        }
    }

    #[test]
    fn predicate_conjunction_semantics() {
        let p = Predicate::new(vec![
            Atom::Compare {
                col: 0,
                op: CompareOp::Ge,
                value: Scalar::Int(10),
            },
            Atom::Compare {
                col: 1,
                op: CompareOp::Eq,
                value: Scalar::from("x"),
            },
        ]);
        assert!(p.matches_with(|c| if c == 0 {
            Scalar::Int(12)
        } else {
            Scalar::from("x")
        }));
        assert!(!p.matches_with(|c| if c == 0 {
            Scalar::Int(12)
        } else {
            Scalar::from("y")
        }));
        assert_eq!(p.columns(), vec![0, 1]);
    }

    #[test]
    fn always_true_matches_everything() {
        assert!(Predicate::always_true().matches_with(|_| unreachable!()));
    }

    #[test]
    fn display_resolves_names() {
        let schema = Schema::from_pairs([
            ("qty", crate::value::ColumnType::Int),
            ("region", crate::value::ColumnType::Str),
        ]);
        let p = Predicate::new(vec![
            Atom::Compare {
                col: 0,
                op: CompareOp::Lt,
                value: Scalar::Int(5),
            },
            Atom::InSet {
                col: 1,
                set: vec![Scalar::from("eu")],
            },
        ]);
        assert_eq!(
            p.display(&schema).to_string(),
            "qty < 5 AND region IN ('eu')"
        );
    }
}
