//! Predicate compilation: fold a conjunction of atoms into one normalized
//! plan per column, the form the storage layer's vectorized scan kernels
//! consume.
//!
//! A [`Predicate`] is a flat list of atoms; evaluating it row-at-a-time
//! re-dispatches on every atom for every row. Compilation does the
//! per-predicate work once:
//!
//! * all atoms on one column collapse into a single [`ColumnPlan`] — an
//!   intersected range with explicit inclusivity, an intersected membership
//!   set, or a proven contradiction ([`ColumnPlan::Never`]);
//! * provably-empty conjunctions (inverted ranges, empty set intersections,
//!   mixed literal types on one column) surface as `Never` instead of being
//!   re-discovered on every row;
//! * the empty predicate compiles to zero plans — a tautology the scan
//!   paths can satisfy without touching any column payload.
//!
//! Compiled semantics are the *typed* row semantics of the storage layer
//! (`atom_matches_ref`): a value matches a literal of a different runtime
//! type never, and floats compare via `total_cmp`. This differs from
//! [`Atom::matches`] only on cross-typed literals, which typed workloads
//! never produce; the kernels must agree with the scan paths, which use the
//! typed semantics.

use crate::predicate::{Atom, CompareOp, Predicate};
use crate::schema::ColId;
use crate::value::Scalar;
use std::cmp::Ordering;

/// One endpoint of a compiled range: the literal plus whether the endpoint
/// itself is admitted.
#[derive(Clone, Debug, PartialEq)]
pub struct Bound {
    /// The endpoint literal.
    pub value: Scalar,
    /// Whether a value equal to the endpoint satisfies the range.
    pub inclusive: bool,
}

/// The normalized form of all atoms on one column.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnPlan {
    /// An intersected interval; at least one bound is present. When both
    /// bounds are present they carry the same scalar type.
    Range {
        /// Greatest lower bound across the column's atoms, if any.
        lo: Option<Bound>,
        /// Least upper bound across the column's atoms, if any.
        hi: Option<Bound>,
    },
    /// An intersected membership set (sorted, deduplicated, non-empty),
    /// already filtered through any range atoms on the same column.
    Set(Vec<Scalar>),
    /// The column's atoms are jointly unsatisfiable: no value of any type
    /// passes, so the whole conjunction matches nothing.
    Never,
}

impl ColumnPlan {
    /// Typed row evaluation of the plan against one value. Equivalent to
    /// evaluating the column's original atoms under `atom_matches_ref`
    /// semantics (type mismatch ⇒ false, floats via `total_cmp`).
    pub fn matches(&self, value: &Scalar) -> bool {
        match self {
            ColumnPlan::Never => false,
            ColumnPlan::Set(set) => set.binary_search(value).is_ok(),
            ColumnPlan::Range { lo, hi } => {
                let above = lo.as_ref().is_none_or(|b| {
                    value.same_type(&b.value)
                        && match value.cmp(&b.value) {
                            Ordering::Greater => true,
                            Ordering::Equal => b.inclusive,
                            Ordering::Less => false,
                        }
                });
                let below = hi.as_ref().is_none_or(|b| {
                    value.same_type(&b.value)
                        && match value.cmp(&b.value) {
                            Ordering::Less => true,
                            Ordering::Equal => b.inclusive,
                            Ordering::Greater => false,
                        }
                });
                above && below
            }
        }
    }

    /// [`ColumnPlan::matches`] specialized to a borrowed string value —
    /// used by the storage layer to evaluate a plan once per dictionary
    /// entry without allocating a [`Scalar`].
    pub fn matches_str(&self, value: &str) -> bool {
        match self {
            ColumnPlan::Never => false,
            ColumnPlan::Set(set) => set.iter().any(|m| m.as_str() == Some(value)),
            ColumnPlan::Range { lo, hi } => {
                let above = lo.as_ref().is_none_or(|b| match b.value.as_str() {
                    Some(bv) => value > bv || (b.inclusive && value == bv),
                    None => false,
                });
                let below = hi.as_ref().is_none_or(|b| match b.value.as_str() {
                    Some(bv) => value < bv || (b.inclusive && value == bv),
                    None => false,
                });
                above && below
            }
        }
    }
}

/// All constraints one column carries in a compiled predicate.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnPredicate {
    col: ColId,
    plan: ColumnPlan,
}

impl ColumnPredicate {
    /// The constrained column.
    pub fn col(&self) -> ColId {
        self.col
    }

    /// The column's normalized plan.
    pub fn plan(&self) -> &ColumnPlan {
        &self.plan
    }
}

/// A [`Predicate`] folded into one plan per distinct column, in the
/// predicate's first-use column order (so the compiled column list lines up
/// with [`Predicate::columns`]).
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledPredicate {
    columns: Vec<ColumnPredicate>,
}

impl CompiledPredicate {
    /// Compile a predicate. Cost is linear in the atom count (plus set
    /// intersection work on the tiny `IN` literal sets).
    pub fn compile(predicate: &Predicate) -> Self {
        let mut columns: Vec<(ColId, Folder)> = Vec::new();
        for atom in predicate.atoms() {
            let col = atom.col();
            let folder = match columns.iter_mut().find(|(c, _)| *c == col) {
                Some((_, f)) => f,
                None => {
                    columns.push((col, Folder::default()));
                    &mut columns.last_mut().expect("just pushed").1
                }
            };
            folder.fold(atom);
        }
        CompiledPredicate {
            columns: columns
                .into_iter()
                .map(|(col, folder)| ColumnPredicate {
                    col,
                    plan: folder.finish(),
                })
                .collect(),
        }
    }

    /// The per-column plans, in the predicate's first-use column order.
    pub fn columns(&self) -> &[ColumnPredicate] {
        &self.columns
    }

    /// True for the empty (always-true) predicate: no column constraints,
    /// so every row matches without reading any column.
    pub fn is_tautology(&self) -> bool {
        self.columns.is_empty()
    }

    /// True when some column's atoms are jointly unsatisfiable — the whole
    /// conjunction matches nothing.
    pub fn is_never(&self) -> bool {
        self.columns
            .iter()
            .any(|c| matches!(c.plan, ColumnPlan::Never))
    }

    /// Typed row evaluation of the whole conjunction; `row(col)` must
    /// return the row's value for `col`. Reference semantics for the
    /// storage kernels (equivalent to per-atom `atom_matches_ref`).
    pub fn matches_with(&self, mut row: impl FnMut(ColId) -> Scalar) -> bool {
        self.columns.iter().all(|c| c.plan.matches(&row(c.col)))
    }
}

/// Accumulates one column's atoms into a plan.
#[derive(Default)]
struct Folder {
    lo: Option<Bound>,
    hi: Option<Bound>,
    /// Intersection of `IN` sets seen so far (`None` = no `IN` atom yet).
    set: Option<Vec<Scalar>>,
    /// Set once the atoms are proven jointly unsatisfiable.
    never: bool,
}

impl Folder {
    fn fold(&mut self, atom: &Atom) {
        match atom {
            Atom::Compare { op, value, .. } => match op {
                CompareOp::Lt => self.tighten_hi(value, false),
                CompareOp::Le => self.tighten_hi(value, true),
                CompareOp::Gt => self.tighten_lo(value, false),
                CompareOp::Ge => self.tighten_lo(value, true),
                CompareOp::Eq => {
                    self.tighten_lo(value, true);
                    self.tighten_hi(value, true);
                }
            },
            Atom::Between { low, high, .. } => {
                self.tighten_lo(low, true);
                self.tighten_hi(high, true);
            }
            Atom::InSet { set, .. } => match &mut self.set {
                None => self.set = Some(set.clone()),
                Some(acc) => acc.retain(|m| set.iter().any(|s| s == m)),
            },
        }
    }

    fn tighten_lo(&mut self, value: &Scalar, inclusive: bool) {
        match &mut self.lo {
            None => {
                self.lo = Some(Bound {
                    value: value.clone(),
                    inclusive,
                })
            }
            Some(cur) => {
                if !cur.value.same_type(value) {
                    // Two ordered atoms with differently-typed literals on
                    // one column: no value has both types, so the
                    // conjunction is unsatisfiable.
                    self.never = true;
                } else {
                    match value.cmp(&cur.value) {
                        Ordering::Greater => {
                            cur.value = value.clone();
                            cur.inclusive = inclusive;
                        }
                        Ordering::Equal => cur.inclusive &= inclusive,
                        Ordering::Less => {}
                    }
                }
            }
        }
    }

    fn tighten_hi(&mut self, value: &Scalar, inclusive: bool) {
        match &mut self.hi {
            None => {
                self.hi = Some(Bound {
                    value: value.clone(),
                    inclusive,
                })
            }
            Some(cur) => {
                if !cur.value.same_type(value) {
                    self.never = true;
                } else {
                    match value.cmp(&cur.value) {
                        Ordering::Less => {
                            cur.value = value.clone();
                            cur.inclusive = inclusive;
                        }
                        Ordering::Equal => cur.inclusive &= inclusive,
                        Ordering::Greater => {}
                    }
                }
            }
        }
    }

    fn finish(self) -> ColumnPlan {
        if self.never {
            return ColumnPlan::Never;
        }
        let range = ColumnPlan::Range {
            lo: self.lo,
            hi: self.hi,
        };
        match self.set {
            Some(mut members) => {
                // Filter the intersected membership set through the range
                // atoms (typed semantics: a member of a different type than
                // a bound fails that bound's atom).
                members.retain(|m| range.matches(m));
                members.sort();
                members.dedup();
                if members.is_empty() {
                    ColumnPlan::Never
                } else {
                    ColumnPlan::Set(members)
                }
            }
            None => {
                if let ColumnPlan::Range {
                    lo: Some(lo),
                    hi: Some(hi),
                } = &range
                {
                    if !lo.value.same_type(&hi.value) {
                        // e.g. BETWEEN an int and a string: no value
                        // compares against both endpoints.
                        return ColumnPlan::Never;
                    }
                    match lo.value.cmp(&hi.value) {
                        Ordering::Greater => return ColumnPlan::Never,
                        Ordering::Equal if !(lo.inclusive && hi.inclusive) => {
                            return ColumnPlan::Never
                        }
                        _ => {}
                    }
                }
                range
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp(col: ColId, op: CompareOp, value: Scalar) -> Atom {
        Atom::Compare { col, op, value }
    }

    /// The typed per-atom oracle the compiled form must agree with:
    /// `atom_matches_ref` lifted to scalars (type mismatch ⇒ no match).
    fn typed_atom_matches(atom: &Atom, value: &Scalar) -> bool {
        let cmp = |rhs: &Scalar| {
            if value.same_type(rhs) {
                Some(value.cmp(rhs))
            } else {
                None
            }
        };
        match atom {
            Atom::Compare { op, value: rhs, .. } => match cmp(rhs) {
                Some(ord) => match op {
                    CompareOp::Lt => ord == Ordering::Less,
                    CompareOp::Le => ord != Ordering::Greater,
                    CompareOp::Gt => ord == Ordering::Greater,
                    CompareOp::Ge => ord != Ordering::Less,
                    CompareOp::Eq => ord == Ordering::Equal,
                },
                None => false,
            },
            Atom::Between { low, high, .. } => {
                matches!(cmp(low), Some(Ordering::Greater | Ordering::Equal))
                    && matches!(cmp(high), Some(Ordering::Less | Ordering::Equal))
            }
            Atom::InSet { set, .. } => set.iter().any(|s| cmp(s) == Some(Ordering::Equal)),
        }
    }

    #[test]
    fn empty_predicate_is_tautology() {
        let c = CompiledPredicate::compile(&Predicate::always_true());
        assert!(c.is_tautology());
        assert!(!c.is_never());
        assert!(c.matches_with(|_| unreachable!()));
    }

    #[test]
    fn range_atoms_intersect() {
        let p = Predicate::new(vec![
            cmp(0, CompareOp::Ge, Scalar::Int(10)),
            cmp(0, CompareOp::Lt, Scalar::Int(20)),
            Atom::Between {
                col: 0,
                low: Scalar::Int(5),
                high: Scalar::Int(18),
            },
        ]);
        let c = CompiledPredicate::compile(&p);
        assert_eq!(c.columns().len(), 1);
        match c.columns()[0].plan() {
            ColumnPlan::Range { lo, hi } => {
                assert_eq!(
                    lo.as_ref().unwrap(),
                    &Bound {
                        value: Scalar::Int(10),
                        inclusive: true
                    }
                );
                assert_eq!(
                    hi.as_ref().unwrap(),
                    &Bound {
                        value: Scalar::Int(18),
                        inclusive: true
                    }
                );
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn strict_bound_wins_at_equal_endpoint() {
        let p = Predicate::new(vec![
            cmp(0, CompareOp::Le, Scalar::Int(7)),
            cmp(0, CompareOp::Lt, Scalar::Int(7)),
        ]);
        let c = CompiledPredicate::compile(&p);
        assert!(c.matches_with(|_| Scalar::Int(6)));
        assert!(!c.matches_with(|_| Scalar::Int(7)));
    }

    #[test]
    fn inverted_range_is_never() {
        let p = Predicate::new(vec![
            cmp(0, CompareOp::Ge, Scalar::Int(10)),
            cmp(0, CompareOp::Lt, Scalar::Int(10)),
        ]);
        assert!(CompiledPredicate::compile(&p).is_never());
        let between = Predicate::new(vec![Atom::Between {
            col: 0,
            low: Scalar::Int(5),
            high: Scalar::Int(3),
        }]);
        assert!(CompiledPredicate::compile(&between).is_never());
    }

    #[test]
    fn eq_folds_to_degenerate_range() {
        let p = Predicate::new(vec![cmp(0, CompareOp::Eq, Scalar::Int(4))]);
        let c = CompiledPredicate::compile(&p);
        assert!(c.matches_with(|_| Scalar::Int(4)));
        assert!(!c.matches_with(|_| Scalar::Int(5)));
        // two different Eq literals contradict
        let p2 = Predicate::new(vec![
            cmp(0, CompareOp::Eq, Scalar::Int(4)),
            cmp(0, CompareOp::Eq, Scalar::Int(5)),
        ]);
        assert!(CompiledPredicate::compile(&p2).is_never());
    }

    #[test]
    fn in_sets_intersect_and_filter_through_ranges() {
        let p = Predicate::new(vec![
            Atom::InSet {
                col: 0,
                set: vec![Scalar::Int(1), Scalar::Int(5), Scalar::Int(9)],
            },
            Atom::InSet {
                col: 0,
                set: vec![Scalar::Int(5), Scalar::Int(9), Scalar::Int(12)],
            },
            cmp(0, CompareOp::Lt, Scalar::Int(9)),
        ]);
        let c = CompiledPredicate::compile(&p);
        assert_eq!(
            c.columns()[0].plan(),
            &ColumnPlan::Set(vec![Scalar::Int(5)])
        );
        // empty intersection is a contradiction
        let p2 = Predicate::new(vec![
            Atom::InSet {
                col: 0,
                set: vec![Scalar::Int(1)],
            },
            Atom::InSet {
                col: 0,
                set: vec![Scalar::Int(2)],
            },
        ]);
        assert!(CompiledPredicate::compile(&p2).is_never());
    }

    #[test]
    fn mixed_literal_types_on_one_column_are_never() {
        let p = Predicate::new(vec![
            cmp(0, CompareOp::Ge, Scalar::Int(1)),
            cmp(0, CompareOp::Le, Scalar::from("z")),
        ]);
        assert!(CompiledPredicate::compile(&p).is_never());
        let between = Predicate::new(vec![Atom::Between {
            col: 0,
            low: Scalar::Int(0),
            high: Scalar::from("z"),
        }]);
        assert!(CompiledPredicate::compile(&between).is_never());
    }

    #[test]
    fn single_typed_literal_rejects_other_types() {
        let p = Predicate::new(vec![cmp(0, CompareOp::Ge, Scalar::Int(0))]);
        let c = CompiledPredicate::compile(&p);
        assert!(c.matches_with(|_| Scalar::Int(3)));
        assert!(!c.matches_with(|_| Scalar::from("zzz")));
        assert!(!c.matches_with(|_| Scalar::Float(3.0)));
    }

    #[test]
    fn float_bounds_use_total_cmp() {
        let p = Predicate::new(vec![cmp(0, CompareOp::Ge, Scalar::Float(0.0))]);
        let c = CompiledPredicate::compile(&p);
        // total_cmp: -0.0 < 0.0, NaN > everything
        assert!(!c.matches_with(|_| Scalar::Float(-0.0)));
        assert!(c.matches_with(|_| Scalar::Float(0.0)));
        assert!(c.matches_with(|_| Scalar::Float(f64::NAN)));
    }

    #[test]
    fn matches_str_agrees_with_scalar_path() {
        let p = Predicate::new(vec![
            Atom::Between {
                col: 0,
                low: Scalar::from("b"),
                high: Scalar::from("m"),
            },
            Atom::InSet {
                col: 0,
                set: vec![Scalar::from("c"), Scalar::from("q")],
            },
        ]);
        let c = CompiledPredicate::compile(&p);
        for v in ["a", "b", "c", "m", "q", "z"] {
            assert_eq!(
                c.columns()[0].plan().matches_str(v),
                c.columns()[0].plan().matches(&Scalar::from(v)),
                "value {v:?}"
            );
        }
    }

    #[test]
    fn columns_follow_first_use_order() {
        let p = Predicate::new(vec![
            cmp(3, CompareOp::Ge, Scalar::Int(1)),
            cmp(1, CompareOp::Lt, Scalar::Int(9)),
            cmp(3, CompareOp::Lt, Scalar::Int(5)),
        ]);
        let c = CompiledPredicate::compile(&p);
        let cols: Vec<ColId> = c.columns().iter().map(|cp| cp.col()).collect();
        assert_eq!(cols, p.columns());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn scalar() -> impl Strategy<Value = Scalar> {
            prop_oneof![
                (-40i64..40).prop_map(Scalar::Int),
                (-40i64..40).prop_map(Scalar::Int),
                (-40i64..40).prop_map(|v| Scalar::Float(v as f64 / 4.0)),
                (0usize..6).prop_map(|i| Scalar::from(["a", "b", "c", "d", "e", "ab"][i])),
            ]
        }

        fn atom() -> impl Strategy<Value = Atom> {
            prop_oneof![
                (
                    scalar(),
                    prop_oneof![
                        Just(CompareOp::Lt),
                        Just(CompareOp::Le),
                        Just(CompareOp::Gt),
                        Just(CompareOp::Ge),
                        Just(CompareOp::Eq),
                    ]
                )
                    .prop_map(|(value, op)| Atom::Compare { col: 0, op, value }),
                (scalar(), scalar()).prop_map(|(a, b)| {
                    let (low, high) = if a <= b { (a, b) } else { (b, a) };
                    Atom::Between { col: 0, low, high }
                }),
                proptest::collection::vec(scalar(), 1..5)
                    .prop_map(|set| Atom::InSet { col: 0, set }),
            ]
        }

        proptest! {
            /// The compiled plan is row-equivalent to evaluating the raw
            /// atom conjunction under typed (`atom_matches_ref`) semantics,
            /// for any mix of atoms — including contradictions and
            /// cross-typed literals.
            #[test]
            fn compiled_equals_typed_atom_conjunction(
                atoms in proptest::collection::vec(atom(), 0..5),
                probes in proptest::collection::vec(scalar(), 1..20),
            ) {
                let p = Predicate::new(atoms);
                let c = CompiledPredicate::compile(&p);
                for v in &probes {
                    let expect = p.atoms().iter().all(|a| typed_atom_matches(a, v));
                    prop_assert_eq!(
                        c.matches_with(|_| v.clone()),
                        expect,
                        "value {:?} under {:?} (compiled {:?})", v, p, c
                    );
                }
            }

            /// `is_never` is sound: a plan proven unsatisfiable admits no
            /// probe value.
            #[test]
            fn never_admits_nothing(
                atoms in proptest::collection::vec(atom(), 1..5),
                probes in proptest::collection::vec(scalar(), 1..20),
            ) {
                let p = Predicate::new(atoms);
                let c = CompiledPredicate::compile(&p);
                if c.is_never() {
                    for v in &probes {
                        prop_assert!(!c.matches_with(|_| v.clone()));
                    }
                }
            }
        }
    }
}
