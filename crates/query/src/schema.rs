//! Table schemas: ordered, named, typed columns.

use crate::value::ColumnType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a column within a [`Schema`].
pub type ColId = usize;

/// A single column definition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within its schema.
    pub name: String,
    /// The column's value type.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// A definition for a column called `name` of type `ty`.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered collection of column definitions with O(1) name lookup.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    #[serde(skip)]
    by_name: HashMap<String, ColId>,
}

impl Schema {
    /// Build a schema from column definitions.
    ///
    /// # Panics
    /// Panics if two columns share a name — schemas are always constructed
    /// from trusted generator code, so a duplicate is a programming error.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            let prev = by_name.insert(c.name.clone(), i);
            assert!(prev.is_none(), "duplicate column name {:?}", c.name);
        }
        Self { columns, by_name }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, ColumnType)>,
        S: Into<String>,
    {
        Self::new(
            pairs
                .into_iter()
                .map(|(n, t)| ColumnDef::new(n, t))
                .collect(),
        )
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolve a column name to its index.
    pub fn col(&self, name: &str) -> Option<ColId> {
        self.by_name.get(name).copied()
    }

    /// Resolve a column name, panicking with a helpful message when absent.
    /// Used by builders where a typo'd name is a programming error.
    pub fn col_or_panic(&self, name: &str) -> ColId {
        self.col(name)
            .unwrap_or_else(|| panic!("unknown column {name:?} (schema: {self})"))
    }

    /// The definition of column `id`.
    pub fn column(&self, id: ColId) -> &ColumnDef {
        &self.columns[id]
    }

    /// Type of column `id`.
    pub fn column_type(&self, id: ColId) -> ColumnType {
        self.columns[id].ty
    }

    /// Iterate over `(ColId, &ColumnDef)`.
    pub fn iter(&self) -> impl Iterator<Item = (ColId, &ColumnDef)> {
        self.columns.iter().enumerate()
    }

    /// Ids of all columns of the given type.
    pub fn columns_of_type(&self, ty: ColumnType) -> Vec<ColId> {
        self.iter()
            .filter(|(_, c)| c.ty == ty)
            .map(|(i, _)| i)
            .collect()
    }

    /// Rebuild the name index (needed after serde deserialization, which
    /// skips the derived map).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", c.name, c.ty)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("qty", ColumnType::Int),
            ("price", ColumnType::Float),
            ("region", ColumnType::Str),
        ])
    }

    #[test]
    fn name_lookup_round_trips() {
        let s = schema();
        assert_eq!(s.col("qty"), Some(1));
        assert_eq!(s.col("missing"), None);
        assert_eq!(s.column(3).name, "region");
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn columns_of_type_filters() {
        let s = schema();
        assert_eq!(s.columns_of_type(ColumnType::Str), vec![3]);
        assert_eq!(s.columns_of_type(ColumnType::Timestamp), vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        Schema::from_pairs([("a", ColumnType::Int), ("a", ColumnType::Float)]);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn col_or_panic_reports_name() {
        schema().col_or_panic("nope");
    }

    #[test]
    fn display_lists_columns() {
        assert_eq!(
            schema().to_string(),
            "[ts:timestamp, qty:int, price:float, region:str]"
        );
    }
}
