//! # oreo-query
//!
//! Typed values, schemas, predicates and queries — the vocabulary shared by
//! every other OREO crate.
//!
//! Layout optimization never needs a full SQL engine: the only query feature
//! that determines whether a partition can be *skipped* is the conjunctive
//! filter over individual columns (Fig. 2 of the paper). This crate models
//! exactly that fragment, with two evaluation surfaces:
//!
//! * row-level evaluation (used by workload generators and the storage
//!   engine's filtered scans), and
//! * conservative pruning against partition metadata (min/max ranges and
//!   distinct sets), which is how `eval_skipped` — the cost oracle of the
//!   whole framework — is computed without touching data.

pub mod compile;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod value;

pub use compile::{Bound, ColumnPlan, ColumnPredicate, CompiledPredicate};
pub use predicate::{Atom, CompareOp, Predicate};
pub use query::{Query, QueryBuilder, TemplateId};
pub use schema::{ColId, ColumnDef, Schema};
pub use value::{ColumnType, Scalar};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn scalar_int() -> impl Strategy<Value = Scalar> {
        (-1000i64..1000).prop_map(Scalar::Int)
    }

    fn atom_int() -> impl Strategy<Value = Atom> {
        prop_oneof![
            (
                scalar_int(),
                prop_oneof![
                    Just(CompareOp::Lt),
                    Just(CompareOp::Le),
                    Just(CompareOp::Gt),
                    Just(CompareOp::Ge),
                    Just(CompareOp::Eq),
                ]
            )
                .prop_map(|(value, op)| Atom::Compare { col: 0, op, value }),
            (scalar_int(), scalar_int()).prop_map(|(a, b)| {
                let (low, high) = if a <= b { (a, b) } else { (b, a) };
                Atom::Between { col: 0, low, high }
            }),
            proptest::collection::vec(scalar_int(), 1..6).prop_map(|mut set| {
                set.sort();
                set.dedup();
                Atom::InSet { col: 0, set }
            }),
        ]
    }

    proptest! {
        /// Soundness of range pruning: if `may_match_range` says "skip",
        /// then no value inside the range satisfies the atom.
        #[test]
        fn range_pruning_is_sound(atom in atom_int(), a in -1000i64..1000, b in -1000i64..1000, probe in -1000i64..1000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            if !atom.may_match_range(&Scalar::Int(lo), &Scalar::Int(hi)) {
                // any probe inside [lo, hi] must fail the atom
                let p = probe.clamp(lo, hi);
                prop_assert!(!atom.matches(&Scalar::Int(p)),
                    "pruned range [{lo},{hi}] but {p} matches {atom:?}");
            }
        }

        /// Soundness of distinct-set pruning: a pruned set contains no
        /// matching member.
        #[test]
        fn set_pruning_is_sound(atom in atom_int(), vals in proptest::collection::btree_set(-1000i64..1000, 0..20)) {
            let distinct: BTreeSet<Scalar> = vals.iter().map(|v| Scalar::Int(*v)).collect();
            if !atom.may_match_set(&distinct) {
                for v in &distinct {
                    prop_assert!(!atom.matches(v), "pruned set but {v} matches {atom:?}");
                }
            }
        }

        /// Completeness on singleton ranges: a partition whose min == max ==
        /// v must be kept iff v matches.
        #[test]
        fn singleton_range_pruning_is_exact(atom in atom_int(), v in -1000i64..1000) {
            let s = Scalar::Int(v);
            prop_assert_eq!(atom.may_match_range(&s, &s), atom.matches(&s));
        }

        /// Scalar ordering is a total order (antisymmetric + transitive on a
        /// sample of triples).
        #[test]
        fn scalar_order_total(a in scalar_int(), b in scalar_int(), c in scalar_int()) {
            use std::cmp::Ordering;
            match a.cmp(&b) {
                Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
                Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
                Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
            }
            if a <= b && b <= c {
                prop_assert!(a <= c);
            }
        }
    }
}
