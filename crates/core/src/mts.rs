//! The classic Borodin–Linial–Saks algorithm for *uniform* metrical task
//! systems over a **fixed** state space (Algorithms 1–3 of the paper;
//! original result: Borodin, Linial & Saks, JACM 1992, competitive ratio
//! `O(log |S|)` — tight `2·H(|S|)` for this counter algorithm).
//!
//! D-UMTS (Algorithm 4, [`crate::dumts::Dumts`]) is a strict generalization:
//! with no add/remove events its behavior *is* the classic algorithm. This
//! module provides the textbook fixed-space interface on top of the same
//! engine, so there is exactly one implementation of the counter mechanics
//! to test and trust.

use crate::dumts::{Dumts, DumtsConfig, StateId, StepOutcome};
use crate::predictor::TransitionPolicy;

/// Fixed-state-space BLS solver.
#[derive(Clone, Debug)]
pub struct Bls {
    inner: Dumts,
}

impl Bls {
    /// The textbook algorithm: uniform transitions, random move at each
    /// phase start (no stay-in-place optimization).
    pub fn classic(states: &[StateId], alpha: f64, seed: u64) -> Self {
        Self {
            inner: Dumts::new(
                states,
                DumtsConfig {
                    alpha,
                    transition: TransitionPolicy::Uniform,
                    stay_on_reset: false,
                    mid_phase_admission: false,
                    seed,
                },
            ),
        }
    }

    /// The paper's practical variant: stay in place on phase reset (§IV-A),
    /// optionally biased transitions (§IV-C).
    pub fn with_config(states: &[StateId], config: DumtsConfig) -> Self {
        Self {
            inner: Dumts::new(states, config),
        }
    }

    /// Pin the initial state.
    pub fn with_initial_state(mut self, s: StateId) -> Self {
        self.inner = self.inner.with_initial_state(s);
        self
    }

    /// The state currently occupied.
    pub fn current(&self) -> StateId {
        self.inner.current()
    }

    /// The switching cost α.
    pub fn alpha(&self) -> f64 {
        self.inner.alpha()
    }

    /// Number of completed elimination phases.
    pub fn phases(&self) -> u64 {
        self.inner.phases()
    }

    /// Number of state switches performed.
    pub fn switches(&self) -> u64 {
        self.inner.switches()
    }

    /// Process one task; `cost(s)` is the service cost of the task in state
    /// `s` (∈ [0, 1]).
    pub fn observe_query(&mut self, cost: impl Fn(StateId) -> f64) -> StepOutcome {
        self.inner.observe_query(cost)
    }

    /// Access the underlying engine (diagnostics).
    pub fn engine(&self) -> &Dumts {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Theorem IV.1's per-phase argument: against any *oblivious* input
    /// (costs fixed before seeing the algorithm's random choices), the
    /// expected algorithm cost per phase is at most `2·α·H(n)`.
    ///
    /// The adversary here pre-commits a harsh random stream; the algorithm's
    /// measured per-phase cost (service + α per move), averaged over seeds,
    /// must respect the bound.
    #[test]
    fn oblivious_stream_phase_cost_bound() {
        let n = 8usize;
        let alpha = 10.0;
        let states: Vec<StateId> = (0..n as u64).collect();
        // Pre-commit the cost stream: per query, every state gets a cost
        // in [0.5, 1.0] — high pressure, but independent of our state.
        let mut adv = StdRng::seed_from_u64(7777);
        let stream: Vec<Vec<f64>> = (0..8_000)
            .map(|_| (0..n).map(|_| 0.5 + 0.5 * adv.random::<f64>()).collect())
            .collect();

        let trials = 30;
        let mut total_cost = 0.0;
        let mut total_phases = 0u64;
        for seed in 0..trials {
            let mut bls = Bls::classic(&states, alpha, seed);
            let mut cost = 0.0;
            for q in &stream {
                let o = bls.observe_query(|s| q[s as usize]);
                cost += q[bls.current() as usize];
                if o.switched_to.is_some() {
                    cost += alpha;
                }
            }
            total_cost += cost;
            total_phases += bls.phases();
        }
        let avg_cost_per_phase = total_cost / total_phases as f64;
        let h_n: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
        let bound = 2.0 * alpha * h_n;
        assert!(
            avg_cost_per_phase <= bound,
            "avg per-phase cost {avg_cost_per_phase:.1} exceeds 2αH(n) = {bound:.1}"
        );
    }

    /// With i.i.d. random costs the algorithm should switch rarely relative
    /// to the query count (each phase lasts ≥ α queries by construction:
    /// counters grow at most 1 per query).
    #[test]
    fn phases_last_at_least_alpha_queries() {
        let alpha = 25.0;
        let states: Vec<StateId> = (0..5).collect();
        let mut bls = Bls::classic(&states, alpha, 3);
        let mut rng = StdRng::seed_from_u64(17);
        let mut queries_in_phase = 0u64;
        for _ in 0..5000 {
            let costs: Vec<f64> = (0..5).map(|_| rng.random::<f64>()).collect();
            let o = bls.observe_query(|s| costs[s as usize]);
            queries_in_phase += 1;
            if o.phase_reset {
                assert!(
                    queries_in_phase as f64 >= alpha,
                    "phase ended after only {queries_in_phase} queries"
                );
                queries_in_phase = 0;
            }
        }
    }

    /// Classic vs stay-in-place: the optimization must not increase the
    /// number of switches (it strictly removes the per-phase initial jump).
    #[test]
    fn stay_in_place_reduces_switches() {
        let states: Vec<StateId> = (0..6).collect();
        let alpha = 8.0;
        let mut classic_switches = 0u64;
        let mut stay_switches = 0u64;
        for seed in 0..20 {
            let mut classic = Bls::classic(&states, alpha, seed);
            let mut stay = Bls::with_config(
                &states,
                DumtsConfig {
                    alpha,
                    transition: TransitionPolicy::Uniform,
                    stay_on_reset: true,
                    mid_phase_admission: false,
                    seed,
                },
            );
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            for _ in 0..4000 {
                let costs: Vec<f64> = (0..6).map(|_| rng.random::<f64>()).collect();
                classic.observe_query(|s| costs[s as usize]);
                stay.observe_query(|s| costs[s as usize]);
            }
            classic_switches += classic.switches();
            stay_switches += stay.switches();
        }
        assert!(
            stay_switches < classic_switches,
            "stay {stay_switches} vs classic {classic_switches}"
        );
    }
}
