//! Two-state MTS with **asymmetric** movement costs (the Appendix C
//! direction; cf. Bruno & Chaudhuri's 3-competitive online physical-design
//! tuning, which the paper discusses in §VII-3).
//!
//! Index tuning is the motivating example: dropping an index is nearly
//! free, building one is expensive — movement costs are not uniform. For
//! two states a deterministic *retaliation* (work-function) algorithm is
//! 3-competitive: accumulate the service-cost difference between the
//! current and the other state, and move exactly when the accumulated
//! regret pays for the transition.

/// Deterministic 3-competitive solver for 2-state MTS with asymmetric
/// transition costs.
#[derive(Clone, Debug)]
pub struct TwoStateAsymmetric {
    /// Cost of moving 0 → 1.
    pub cost_01: f64,
    /// Cost of moving 1 → 0.
    pub cost_10: f64,
    current: usize,
    /// Accumulated (cost(current) − cost(other)) since the last move,
    /// floored at 0 (regret cannot be banked below zero).
    regret: f64,
    moves: u64,
}

impl TwoStateAsymmetric {
    /// Start in `initial` (0 or 1) with the given transition costs.
    ///
    /// # Panics
    /// Panics on a state other than 0/1 or non-positive move costs.
    pub fn new(initial: usize, cost_01: f64, cost_10: f64) -> Self {
        assert!(initial < 2, "two states only");
        assert!(
            cost_01 > 0.0 && cost_10 > 0.0,
            "move costs must be positive"
        );
        Self {
            cost_01,
            cost_10,
            current: initial,
            regret: 0.0,
            moves: 0,
        }
    }

    /// The side (0 or 1) the walker currently occupies.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Number of side switches performed so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    fn move_cost_from_current(&self) -> f64 {
        if self.current == 0 {
            self.cost_01
        } else {
            self.cost_10
        }
    }

    /// Observe one task with service costs `(c0, c1)`; returns the cost
    /// incurred this step (service in the post-move state, plus the move
    /// cost if a move happened).
    pub fn observe(&mut self, c0: f64, c1: f64) -> f64 {
        let (cur, other) = if self.current == 0 {
            (c0, c1)
        } else {
            (c1, c0)
        };
        self.regret = (self.regret + (cur - other)).max(0.0);
        if self.regret >= self.move_cost_from_current() {
            let paid = self.move_cost_from_current();
            self.current ^= 1;
            self.moves += 1;
            self.regret = 0.0;
            // task is serviced after the move
            let service = if self.current == 0 { c0 } else { c1 };
            return paid + service;
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exact 2-state offline optimum by DP.
    fn opt(costs: &[(f64, f64)], cost_01: f64, cost_10: f64) -> f64 {
        let mut d0 = 0.0f64;
        let mut d1 = 0.0f64;
        for &(c0, c1) in costs {
            let n0 = d0.min(d1 + cost_10) + c0;
            let n1 = d1.min(d0 + cost_01) + c1;
            d0 = n0;
            d1 = n1;
        }
        d0.min(d1)
    }

    fn run(costs: &[(f64, f64)], cost_01: f64, cost_10: f64) -> f64 {
        let mut a = TwoStateAsymmetric::new(0, cost_01, cost_10);
        costs.iter().map(|&(c0, c1)| a.observe(c0, c1)).sum()
    }

    #[test]
    fn stays_put_when_current_is_best() {
        let costs = vec![(0.0, 1.0); 100];
        let mut a = TwoStateAsymmetric::new(0, 5.0, 1.0);
        let total: f64 = costs.iter().map(|&(c0, c1)| a.observe(c0, c1)).sum();
        assert_eq!(total, 0.0);
        assert_eq!(a.moves(), 0);
    }

    #[test]
    fn moves_once_regret_pays_for_transition() {
        // state 0 costs 1/query, state 1 free; move 0→1 costs 5
        let mut a = TwoStateAsymmetric::new(0, 5.0, 1.0);
        let mut moved_at = None;
        for t in 0..20 {
            let cost = a.observe(1.0, 0.0);
            if a.current() == 1 && moved_at.is_none() {
                moved_at = Some(t);
                assert!((cost - 5.0).abs() < 1e-12, "move + free service");
            }
        }
        assert_eq!(moved_at, Some(4), "moves after regret reaches 5");
        assert_eq!(a.moves(), 1);
    }

    #[test]
    fn asymmetry_respected_in_both_directions() {
        // cheap to drop (1→0 costs 1), expensive to build (0→1 costs 10)
        let mut a = TwoStateAsymmetric::new(1, 10.0, 1.0);
        a.observe(0.0, 1.0); // regret 1 ≥ cost_10 → drops immediately
        assert_eq!(a.current(), 0);
        // now needs 10 accumulated regret to go back
        for _ in 0..9 {
            a.observe(1.0, 0.0);
        }
        assert_eq!(a.current(), 0, "not yet");
        a.observe(1.0, 0.0);
        assert_eq!(a.current(), 1, "rebuilt after 10 units of regret");
    }

    #[test]
    fn three_competitive_on_random_streams() {
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cost_01 = 1.0 + 9.0 * rng.random::<f64>();
            let cost_10 = 1.0 + 9.0 * rng.random::<f64>();
            // block-structured adversarial-ish stream
            let mut costs = Vec::new();
            for block in 0..20 {
                let cheap = block % 2;
                for _ in 0..rng.random_range(20..120) {
                    let c = rng.random::<f64>();
                    costs.push(if cheap == 0 {
                        (0.1 * c, 0.5 + 0.5 * c)
                    } else {
                        (0.5 + 0.5 * c, 0.1 * c)
                    });
                }
            }
            let alg = run(&costs, cost_01, cost_10);
            let best = opt(&costs, cost_01, cost_10);
            let slack = cost_01 + cost_10;
            assert!(
                alg <= 3.0 * best + slack,
                "seed {seed}: alg {alg:.1} > 3·OPT + slack = {:.1}",
                3.0 * best + slack
            );
        }
    }
}
