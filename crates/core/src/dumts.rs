//! D-UMTS: the dynamic uniform metrical task system solver (Algorithm 4).
//!
//! This is the paper's core algorithmic contribution. It extends the classic
//! Borodin–Linial–Saks counter algorithm (Algorithms 1–3, [`crate::mts`])
//! with *state update queries* that add and remove states mid-stream while
//! preserving a tight competitive ratio of `2·H(|S_max|)` (Theorem IV.1):
//!
//! * every state carries a counter accumulating its service costs; a counter
//!   is **full** at `α` (the uniform switching cost);
//! * when the current state's counter fills, the system jumps to a random
//!   not-full ("active") state — uniformly, or biased by a predictor
//!   (§IV-C, [`TransitionPolicy`]);
//! * when all counters are full the **phase** ends: counters reset and all
//!   states (including additions deferred mid-phase) become active again;
//! * additions mid-phase are deferred to the next phase; removals mid-phase
//!   set the victim's counter to `α` (and force a jump if it was current).
//!
//! The paper's stay-in-place optimization (§IV-A) is on by default: a new
//! phase keeps the current state instead of paying for a random move; this
//! does not change the asymptotic ratio but measurably cuts reorganizations.

use crate::predictor::{median_or, TransitionPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Identifier of a system state (for OREO: a data layout id).
pub type StateId = u64;

/// Reorganizer tuning knobs.
#[derive(Clone, Debug)]
pub struct DumtsConfig {
    /// Relative cost of switching states (the paper's α; ≥ 1).
    pub alpha: f64,
    /// Jump distribution when the current counter fills.
    pub transition: TransitionPolicy,
    /// Keep the current state when a phase resets (§IV-A optimization)
    /// instead of the classic random re-draw.
    pub stay_on_reset: bool,
    /// §IV-C counter initialization for states added mid-phase: when `true`,
    /// a new state joins the *current* phase with its counter set to the
    /// median of the costs incurred so far by existing states (so a
    /// freshly-generated layout is immediately switchable-to). When `false`,
    /// additions are deferred to the next phase (Algorithm 4 verbatim).
    pub mid_phase_admission: bool,
    /// RNG seed (the adversary must not see these bits — §III-A).
    pub seed: u64,
}

impl Default for DumtsConfig {
    fn default() -> Self {
        Self {
            alpha: 80.0,
            transition: TransitionPolicy::default_biased(),
            stay_on_reset: true,
            mid_phase_admission: false,
            seed: 0,
        }
    }
}

#[derive(Clone, Debug)]
struct StateEntry {
    /// Accumulated service cost this phase (full at α).
    counter: f64,
    /// In the active set `S_A` (counter not full, participating this phase)?
    active: bool,
    /// Added mid-phase; joins `S_A` at the next reset.
    deferred: bool,
    /// Service cost accumulated over the *whole* current phase (for the
    /// predictor weight = average fraction skipped).
    phase_cost_sum: f64,
    phase_cost_n: u64,
    /// Predictor weight from the last completed phase (avg skipped ∈ [0,1]).
    last_phase_weight: f64,
}

/// What a step did, so callers can account costs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepOutcome {
    /// `Some(new_state)` when the system moved (a reorganization: cost α).
    pub switched_to: Option<StateId>,
    /// A phase ended and counters were reset during this step.
    pub phase_reset: bool,
}

/// The Algorithm 4 engine.
///
/// # Example
///
/// ```
/// use oreo_core::{Dumts, DumtsConfig};
///
/// let mut d = Dumts::new(
///     &[0, 1, 2],
///     DumtsConfig {
///         alpha: 4.0,
///         seed: 7,
///         ..Default::default()
///     },
/// );
/// for _ in 0..200 {
///     // state 1 is consistently cheap, the others expensive
///     d.observe_query(|s| if s == 1 { 0.1 } else { 0.9 });
/// }
/// assert!(d.states().contains(&d.current()));
/// assert!(d.switches() > 0 && d.phases() > 0);
///
/// // the "D" in D-UMTS: the state space changes mid-stream
/// d.add_state(3);
/// let _ = d.remove_state(0);
/// assert_eq!(d.states().len(), 3);
/// assert!(d.max_states_seen() >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct Dumts {
    config: DumtsConfig,
    /// Deterministic iteration (BTreeMap) keeps runs reproducible.
    states: BTreeMap<StateId, StateEntry>,
    current: StateId,
    rng: StdRng,
    phases: u64,
    switches: u64,
    queries: u64,
    /// Largest |S| ever (the `|S_max|` of Theorem IV.1).
    max_states: usize,
    /// Externally supplied predictor scores (§IV-C's `p(s, S_A)`), e.g.
    /// skipped fractions measured on a recent query sample. When present
    /// they replace the last-phase weights in jump draws.
    external_weights: Option<BTreeMap<StateId, f64>>,
}

impl Dumts {
    /// Start with a non-empty initial state set; the initial state is drawn
    /// uniformly (Algorithm 1 line 2) unless `stay_on_reset` callers prefer
    /// to pin it via [`Dumts::with_initial_state`].
    pub fn new(initial_states: &[StateId], config: DumtsConfig) -> Self {
        assert!(!initial_states.is_empty(), "need at least one state");
        assert!(config.alpha >= 1.0, "alpha must be >= 1");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut states = BTreeMap::new();
        for &s in initial_states {
            states.insert(
                s,
                StateEntry {
                    counter: 0.0,
                    active: true,
                    deferred: false,
                    phase_cost_sum: 0.0,
                    phase_cost_n: 0,
                    last_phase_weight: 0.0,
                },
            );
        }
        let ids: Vec<StateId> = states.keys().copied().collect();
        let current = ids[rand::Rng::random_range(&mut rng, 0..ids.len())];
        let max_states = states.len();
        Self {
            config,
            states,
            current,
            rng,
            phases: 1,
            switches: 0,
            queries: 0,
            max_states,
            external_weights: None,
        }
    }

    /// Pin the starting state (used when the system boots on a known default
    /// layout rather than a random one).
    pub fn with_initial_state(mut self, s: StateId) -> Self {
        assert!(self.states.contains_key(&s), "unknown initial state");
        self.current = s;
        self
    }

    /// The state D-UMTS currently occupies.
    pub fn current(&self) -> StateId {
        self.current
    }

    /// The reorganization cost α this instance was built with.
    pub fn alpha(&self) -> f64 {
        self.config.alpha
    }

    /// All states currently in `S`.
    pub fn states(&self) -> Vec<StateId> {
        self.states.keys().copied().collect()
    }

    /// States in the active set `S_A`.
    pub fn active_states(&self) -> Vec<StateId> {
        self.states
            .iter()
            .filter(|(_, e)| e.active)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Counter of a state, if present.
    pub fn counter(&self, s: StateId) -> Option<f64> {
        self.states.get(&s).map(|e| e.counter)
    }

    /// Completed + current phase count.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// Number of state switches so far (each costs α).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Queries observed.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Largest state-set size seen (|S_max| in Theorem IV.1).
    pub fn max_states_seen(&self) -> usize {
        self.max_states
    }

    /// Add a state (Algorithm 4 lines 12–13). By default mid-phase
    /// additions are deferred: the state joins the active set at the next
    /// reset. With [`DumtsConfig::mid_phase_admission`] the state instead
    /// joins the current phase with its counter initialized to the median of
    /// the active counters (§IV-C). Its predictor weight starts at the
    /// median of current weights either way.
    pub fn add_state(&mut self, s: StateId) {
        if self.states.contains_key(&s) {
            return;
        }
        let weights: Vec<f64> = self.states.values().map(|e| e.last_phase_weight).collect();
        let seed_weight = median_or(&weights, 0.0);
        let entry = if self.config.mid_phase_admission {
            let active_counters: Vec<f64> = self
                .states
                .values()
                .filter(|e| e.active)
                .map(|e| e.counter)
                .collect();
            let counter = median_or(&active_counters, 0.0);
            StateEntry {
                counter,
                active: counter < self.config.alpha,
                deferred: false,
                phase_cost_sum: 0.0,
                phase_cost_n: 0,
                last_phase_weight: seed_weight,
            }
        } else {
            StateEntry {
                counter: self.config.alpha, // not usable this phase
                active: false,
                deferred: true,
                phase_cost_sum: 0.0,
                phase_cost_n: 0,
                last_phase_weight: seed_weight,
            }
        };
        self.states.insert(s, entry);
        self.max_states = self.max_states.max(self.states.len());
    }

    /// Install (or clear) external predictor scores for jump draws — the
    /// user-supplied `p(s, S_A)` of §IV-C. Scores should live in `[0, 1]`
    /// (e.g. fraction of data skipped on a recent query sample); missing
    /// states fall back to their last-phase weight.
    pub fn set_external_weights(&mut self, weights: Option<BTreeMap<StateId, f64>>) {
        self.external_weights = weights;
    }

    /// Remove a state (Algorithm 4 lines 5–11). Returns the outcome: the
    /// removal may force a phase reset and/or a jump (cost α) when the
    /// current state is deleted.
    ///
    /// # Panics
    /// Panics when removing the last remaining state — the system must
    /// always have somewhere to be.
    pub fn remove_state(&mut self, s: StateId) -> StepOutcome {
        let mut outcome = StepOutcome::default();
        if self.states.remove(&s).is_none() {
            return outcome;
        }
        assert!(
            !self.states.is_empty(),
            "cannot remove the last remaining state"
        );
        if self.no_active_states() {
            self.reset_states();
            outcome.phase_reset = true;
        }
        if s == self.current {
            // forced move: uniform over active states (the victim has no
            // meaningful predictor standing here)
            let active = self.active_states();
            let idx = rand::Rng::random_range(&mut self.rng, 0..active.len());
            self.current = active[idx];
            self.switches += 1;
            outcome.switched_to = Some(self.current);
        }
        outcome
    }

    /// Process one service query (Algorithm 3 within Algorithm 4 line 15).
    /// `cost(s)` must return `c(s, q) ∈ [0, 1]` for any state in `S`.
    pub fn observe_query(&mut self, cost: impl Fn(StateId) -> f64) -> StepOutcome {
        self.queries += 1;
        let alpha = self.config.alpha;

        // Update counters of active states; track phase costs of all states
        // (the predictor's weight covers the whole phase).
        for (&s, entry) in self.states.iter_mut() {
            let c = cost(s).clamp(0.0, 1.0);
            entry.phase_cost_sum += c;
            entry.phase_cost_n += 1;
            if entry.active {
                entry.counter += c;
                if entry.counter >= alpha {
                    entry.active = false;
                }
            }
        }

        let mut outcome = StepOutcome::default();
        let current_active = self.states.get(&self.current).is_some_and(|e| e.active);
        if current_active {
            return outcome;
        }

        if self.no_active_states() {
            // Phase over: reset counters, admit deferred states.
            self.reset_states();
            outcome.phase_reset = true;
            if !self.config.stay_on_reset || !self.states.contains_key(&self.current) {
                let next = self.draw_next_state();
                if next != self.current {
                    self.current = next;
                    self.switches += 1;
                    outcome.switched_to = Some(next);
                }
            }
            return outcome;
        }

        // Jump to an active state via the transition distribution.
        let next = self.draw_next_state();
        debug_assert_ne!(next, self.current, "current is inactive here");
        self.current = next;
        self.switches += 1;
        outcome.switched_to = Some(next);
        outcome
    }

    fn no_active_states(&self) -> bool {
        !self.states.values().any(|e| e.active)
    }

    /// Reset: start a new phase with all states active, counters at 0
    /// (Algorithm 2), sealing last-phase predictor weights.
    fn reset_states(&mut self) {
        for entry in self.states.values_mut() {
            if entry.phase_cost_n > 0 {
                let avg_cost = entry.phase_cost_sum / entry.phase_cost_n as f64;
                entry.last_phase_weight = (1.0 - avg_cost).clamp(0.0, 1.0);
            }
            entry.counter = 0.0;
            entry.active = true;
            entry.deferred = false;
            entry.phase_cost_sum = 0.0;
            entry.phase_cost_n = 0;
        }
        self.phases += 1;
    }

    /// Draw the next state among active states per the transition policy.
    fn draw_next_state(&mut self) -> StateId {
        let candidates: Vec<StateId> = self.active_states();
        assert!(!candidates.is_empty(), "no active state to jump to");
        let weights: Vec<f64> = candidates
            .iter()
            .map(|s| {
                self.external_weights
                    .as_ref()
                    .and_then(|m| m.get(s).copied())
                    .unwrap_or(self.states[s].last_phase_weight)
            })
            .collect();
        let idx = self.config.transition.sample(&weights, &mut self.rng);
        candidates[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_config(alpha: f64, seed: u64) -> DumtsConfig {
        DumtsConfig {
            alpha,
            transition: TransitionPolicy::Uniform,
            stay_on_reset: true,
            mid_phase_admission: false,
            seed,
        }
    }

    #[test]
    fn stays_put_while_counter_below_alpha() {
        let mut d = Dumts::new(&[1, 2], uniform_config(5.0, 0)).with_initial_state(1);
        for _ in 0..4 {
            let o = d.observe_query(|s| if s == 1 { 1.0 } else { 0.0 });
            assert_eq!(o.switched_to, None);
        }
        assert_eq!(d.current(), 1);
        // 5th unit fills the counter → must switch to state 2
        let o = d.observe_query(|s| if s == 1 { 1.0 } else { 0.0 });
        assert_eq!(o.switched_to, Some(2));
        assert_eq!(d.current(), 2);
        assert_eq!(d.switches(), 1);
    }

    #[test]
    fn phase_resets_when_all_counters_full() {
        let mut d = Dumts::new(&[1, 2], uniform_config(3.0, 1)).with_initial_state(1);
        // both states cost 1 per query → both counters fill on query 3
        let mut resets = 0;
        for _ in 0..3 {
            let o = d.observe_query(|_| 1.0);
            if o.phase_reset {
                resets += 1;
            }
        }
        assert_eq!(resets, 1);
        assert_eq!(d.phases(), 2);
        // stay-on-reset: no switch happened
        assert_eq!(d.switches(), 0);
        assert_eq!(d.current(), 1);
        // counters are back to zero and everyone is active
        assert_eq!(d.counter(1), Some(0.0));
        assert_eq!(d.active_states(), vec![1, 2]);
    }

    #[test]
    fn classic_reset_draws_random_state() {
        let mut cfg = uniform_config(2.0, 7);
        cfg.stay_on_reset = false;
        let mut d = Dumts::new(&[1, 2, 3], cfg).with_initial_state(1);
        let mut saw_switch_on_reset = false;
        for _ in 0..100 {
            let o = d.observe_query(|_| 1.0);
            if o.phase_reset && o.switched_to.is_some() {
                saw_switch_on_reset = true;
            }
        }
        assert!(saw_switch_on_reset, "classic variant should move on reset");
    }

    #[test]
    fn added_state_deferred_to_next_phase() {
        let mut d = Dumts::new(&[1, 2], uniform_config(4.0, 2)).with_initial_state(1);
        d.observe_query(|_| 1.0);
        d.add_state(3);
        // not active mid-phase
        assert_eq!(d.active_states(), vec![1, 2]);
        assert_eq!(d.states(), vec![1, 2, 3]);
        // finish the phase (counters at 1 → need 3 more)
        for _ in 0..3 {
            d.observe_query(|_| 1.0);
        }
        assert_eq!(d.phases(), 2);
        assert_eq!(d.active_states(), vec![1, 2, 3]);
        assert_eq!(d.max_states_seen(), 3);
    }

    #[test]
    fn removing_noncurrent_state_is_quiet() {
        let mut d = Dumts::new(&[1, 2, 3], uniform_config(10.0, 3)).with_initial_state(1);
        let o = d.remove_state(2);
        assert_eq!(o, StepOutcome::default());
        assert_eq!(d.states(), vec![1, 3]);
        assert_eq!(d.current(), 1);
    }

    #[test]
    fn removing_current_state_forces_jump() {
        let mut d = Dumts::new(&[1, 2, 3], uniform_config(10.0, 4)).with_initial_state(2);
        let o = d.remove_state(2);
        let new = o.switched_to.expect("must jump");
        assert_ne!(new, 2);
        assert_eq!(d.current(), new);
        assert_eq!(d.switches(), 1);
    }

    #[test]
    fn removal_that_empties_active_set_resets_phase() {
        let mut d = Dumts::new(&[1, 2], uniform_config(2.0, 5)).with_initial_state(1);
        // fill state 2's counter only
        d.observe_query(|s| if s == 2 { 1.0 } else { 0.0 });
        d.observe_query(|s| if s == 2 { 1.0 } else { 0.0 });
        assert_eq!(d.active_states(), vec![1]);
        // removing state 1 (current) leaves no active state → reset, then jump
        let o = d.remove_state(1);
        assert!(o.phase_reset);
        assert_eq!(o.switched_to, Some(2));
        assert_eq!(d.current(), 2);
        assert_eq!(d.active_states(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "last remaining state")]
    fn cannot_remove_last_state() {
        let mut d = Dumts::new(&[1], uniform_config(5.0, 6));
        d.remove_state(1);
    }

    #[test]
    fn add_existing_state_is_noop() {
        let mut d = Dumts::new(&[1, 2], uniform_config(5.0, 7));
        d.observe_query(|_| 0.5);
        let c = d.counter(1).unwrap();
        d.add_state(1);
        assert_eq!(d.counter(1), Some(c));
        assert_eq!(d.states().len(), 2);
    }

    #[test]
    fn costs_are_clamped_to_unit_interval() {
        let mut d = Dumts::new(&[1, 2], uniform_config(3.0, 8)).with_initial_state(1);
        // a buggy cost fn returning 100 must not blow past α in one step
        // beyond saturation semantics (counter fills, state deactivates)
        d.observe_query(|_| 100.0);
        assert!(d.counter(1).unwrap() <= 3.0 + 1.0);
        assert_eq!(d.phases(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut d = Dumts::new(&[1, 2, 3, 4], uniform_config(4.0, seed));
            let mut trace = Vec::new();
            for i in 0..200u64 {
                let o = d.observe_query(|s| ((s + i) % 3) as f64 / 2.0);
                trace.push((d.current(), o.switched_to, o.phase_reset));
            }
            trace
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should diverge");
    }

    /// The counter interpretation from the Theorem IV.1 proof: at any time,
    /// every *inactive* state accumulated at least α during this phase, and
    /// active counters are below α.
    #[test]
    fn counter_invariant_holds_under_random_stream() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(99);
        let mut d = Dumts::new(&[1, 2, 3, 4, 5], uniform_config(6.0, 100));
        for step in 0..2000 {
            // occasional dynamic updates
            if step % 97 == 0 {
                d.add_state(100 + step as StateId);
            }
            if step % 131 == 0 {
                let victims: Vec<StateId> = d
                    .states()
                    .into_iter()
                    .filter(|&s| s >= 100 && s != d.current())
                    .collect();
                if let Some(&v) = victims.first() {
                    d.remove_state(v);
                }
            }
            let costs: Vec<f64> = (0..200).map(|_| rng.random::<f64>()).collect();
            d.observe_query(|s| costs[(s % 200) as usize]);
            for s in d.states() {
                let e = d.counter(s).unwrap();
                let active = d.active_states().contains(&s);
                if active {
                    assert!(e < 6.0, "active counter >= alpha");
                }
            }
            // the current state is always a member of S
            assert!(d.states().contains(&d.current()));
        }
        assert!(d.max_states_seen() >= 5);
    }
}
