//! The LAYOUT MANAGER: producer of the dynamic state space (§V).
//!
//! Responsibilities:
//!
//! 1. **Candidate generation** (§V-A): every `generation_interval` queries,
//!    call the pluggable [`LayoutGenerator`] on a small *data* sample and a
//!    *workload* sample — by default the sliding window of recent queries
//!    (the configuration the paper found best), optionally a uniform
//!    reservoir or both (the §VI-D4 ablation).
//! 2. **Admission** (Algorithm 5): evaluate the candidate's cost vector on
//!    an R-TBS time-biased query sample and admit only if its normalized L1
//!    distance to *every* existing state exceeds ε — keeping the state space
//!    compact, which directly tightens the `2H(|S_max|)` competitive ratio.
//! 3. **Pruning** (§V-B): optionally cap the state-space size, evicting the
//!    member of the closest pair (never a protected state, e.g. the one the
//!    system currently lives in).

use oreo_layout::{build_model, LayoutGenerator, SharedSpec};
use oreo_query::Query;
use oreo_sampling::{Reservoir, SlidingWindow, TimeBiasedReservoir};
use oreo_storage::{cost_vector_distance, LayoutId, LayoutModel, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which workload sample feeds `generate_layout` (§VI-D4 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateSource {
    /// Sliding window only (paper default, best overall).
    SlidingWindow,
    /// Uniform reservoir only.
    Reservoir,
    /// One candidate from each per generation round.
    Both,
}

/// Layout-manager configuration (defaults = the paper's §VI-A3 setup).
#[derive(Clone, Debug)]
pub struct ManagerConfig {
    /// Admission distance threshold ε (default 0.08).
    pub epsilon: f64,
    /// Sliding-window length (default 200 queries).
    pub window: usize,
    /// Generate candidates every this many queries (default = window).
    pub generation_interval: u64,
    /// Capacity of the uniform reservoir (ablation source).
    pub reservoir_capacity: usize,
    /// Capacity of the R-TBS admission sample.
    pub rtbs_capacity: usize,
    /// R-TBS decay rate λ.
    pub rtbs_lambda: f64,
    /// Workload sample source for candidate generation.
    pub source: CandidateSource,
    /// Hard cap on the state-space size (`None` = unbounded; admission's ε
    /// test already keeps it compact in practice).
    pub max_states: Option<usize>,
    /// RNG seed (sampling + generator randomness).
    pub seed: u64,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.08,
            window: 200,
            generation_interval: 200,
            reservoir_capacity: 200,
            rtbs_capacity: 64,
            rtbs_lambda: 0.005,
            source: CandidateSource::SlidingWindow,
            max_states: None,
            seed: 0,
        }
    }
}

/// A state owned by the manager: the routing spec plus its estimated
/// (sample-scaled) metadata model.
#[derive(Clone)]
pub struct ManagedLayout {
    /// Stable identifier, shared with the reorganizer's state space.
    pub id: LayoutId,
    /// The routing spec (how rows map to partitions).
    pub spec: SharedSpec,
    /// Estimated per-partition metadata used for cost evaluation.
    pub model: LayoutModel,
}

impl std::fmt::Debug for ManagedLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManagedLayout")
            .field("id", &self.id)
            .field("name", &self.model.name())
            .finish()
    }
}

/// State-space change notifications for the consumer (the REORGANIZER).
#[derive(Clone, Debug, PartialEq)]
pub enum ManagerEvent {
    /// A layout was admitted into the state space.
    Added(LayoutId),
    /// A layout was evicted from the state space.
    Removed(LayoutId),
}

/// Bookkeeping counters (Fig. 6 reports state-space size; the docs report
/// admission rates).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ManagerStats {
    /// Candidate layouts produced by the generator.
    pub generated: u64,
    /// Candidates that passed the ε-distance admission test.
    pub admitted: u64,
    /// Candidates rejected as too close to an existing state.
    pub rejected: u64,
    /// States evicted to respect the state-space cap.
    pub pruned: u64,
    /// Largest state-space size observed (the paper's |S_max|).
    pub peak_states: usize,
}

/// The LAYOUT MANAGER.
///
/// # Example
///
/// ```
/// use oreo_core::{LayoutManager, ManagerConfig};
/// use oreo_layout::{QdTreeGenerator, RangeLayout, SharedSpec};
/// use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};
/// use oreo_storage::TableBuilder;
/// use std::sync::Arc;
///
/// // a tiny one-column table
/// let schema = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
/// let mut b = TableBuilder::new(Arc::clone(&schema));
/// for i in 0..1_000i64 {
///     b.push_row(&[Scalar::Int(i)]);
/// }
/// let table = b.finish();
///
/// // start from an equi-depth range layout; grow Qd-tree candidates
/// let initial: SharedSpec = Arc::new(RangeLayout::from_sample(&table, 0, 8));
/// let config = ManagerConfig {
///     window: 50,
///     generation_interval: 50,
///     ..Default::default()
/// };
/// let (mut manager, initial_id) =
///     LayoutManager::new(table, 1_000.0, Arc::new(QdTreeGenerator::new()), 8, initial, config);
///
/// // every `generation_interval` queries the manager proposes candidates
/// for i in 0..100i64 {
///     let lo = (i * 9) % 900;
///     let q = QueryBuilder::new(&schema).between("v", lo, lo + 40).build();
///     let _events = manager.observe(&q);
/// }
/// assert!(manager.states().contains_key(&initial_id));
/// assert!(manager.stats().generated > 0);
/// assert_eq!(manager.num_states(), manager.states().len());
/// ```
pub struct LayoutManager {
    config: ManagerConfig,
    generator: Arc<dyn LayoutGenerator>,
    /// Small data sample used for `generate_layout` and candidate costing.
    data_sample: Table,
    /// Row count of the full table (for scaling sample metadata).
    full_rows: f64,
    /// Target partition count handed to the generator.
    k: usize,
    window: SlidingWindow<Query>,
    reservoir: Reservoir<Query>,
    rtbs: TimeBiasedReservoir<Query>,
    states: BTreeMap<LayoutId, ManagedLayout>,
    next_id: LayoutId,
    queries_seen: u64,
    rng: StdRng,
    stats: ManagerStats,
}

impl LayoutManager {
    /// Create a manager seeded with one initial (default) layout spec.
    /// Returns the manager and the initial state's id.
    pub fn new(
        data_sample: Table,
        full_rows: f64,
        generator: Arc<dyn LayoutGenerator>,
        k: usize,
        initial_spec: SharedSpec,
        config: ManagerConfig,
    ) -> (Self, LayoutId) {
        assert!(k >= 1);
        assert!(config.epsilon >= 0.0 && config.epsilon <= 1.0);
        let mut this = Self {
            window: SlidingWindow::new(config.window),
            reservoir: Reservoir::new(config.reservoir_capacity),
            rtbs: TimeBiasedReservoir::new(config.rtbs_capacity, config.rtbs_lambda),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            generator,
            data_sample,
            full_rows,
            k,
            states: BTreeMap::new(),
            next_id: 0,
            queries_seen: 0,
            stats: ManagerStats::default(),
        };
        let id = this.install(initial_spec);
        (this, id)
    }

    fn install(&mut self, spec: SharedSpec) -> LayoutId {
        let id = self.next_id;
        self.next_id += 1;
        let model = build_model(spec.as_ref(), id, &self.data_sample, self.full_rows);
        self.states.insert(id, ManagedLayout { id, spec, model });
        self.stats.peak_states = self.stats.peak_states.max(self.states.len());
        id
    }

    /// Current state space (id → managed layout).
    pub fn states(&self) -> &BTreeMap<LayoutId, ManagedLayout> {
        &self.states
    }

    /// Current state-space size |S|.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Admission/eviction counters so far.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// The configuration this manager was built with.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// A state's managed entry.
    pub fn state(&self, id: LayoutId) -> Option<&ManagedLayout> {
        self.states.get(&id)
    }

    /// Observe one query: update samples; on generation boundaries, produce
    /// candidates and run admission. Returns state-space change events.
    pub fn observe(&mut self, query: &Query) -> Vec<ManagerEvent> {
        self.queries_seen += 1;
        self.window.push(query.clone());
        self.reservoir.push(query.clone(), &mut self.rng);
        self.rtbs.push(query.clone(), &mut self.rng);

        let mut events = Vec::new();
        if !self
            .queries_seen
            .is_multiple_of(self.config.generation_interval)
        {
            return events;
        }

        let mut workloads: Vec<Vec<Query>> = Vec::new();
        match self.config.source {
            CandidateSource::SlidingWindow => workloads.push(self.window.to_vec()),
            CandidateSource::Reservoir => workloads.push(self.reservoir.to_vec()),
            CandidateSource::Both => {
                workloads.push(self.window.to_vec());
                workloads.push(self.reservoir.to_vec());
            }
        }

        for workload in workloads {
            if workload.is_empty() {
                continue;
            }
            let spec = self
                .generator
                .generate(&self.data_sample, &workload, self.k, &mut self.rng);
            self.stats.generated += 1;
            if let Some(id) = self.try_admit(spec) {
                events.push(ManagerEvent::Added(id));
            }
        }
        events
    }

    /// Algorithm 5: admit `spec` iff its cost vector over the R-TBS sample
    /// is at least ε away (normalized L1) from every existing state's.
    fn try_admit(&mut self, spec: SharedSpec) -> Option<LayoutId> {
        let sample = self.rtbs.to_vec();
        let candidate_model = build_model(
            spec.as_ref(),
            u64::MAX, // provisional id; reassigned on install
            &self.data_sample,
            self.full_rows,
        );
        let c = candidate_model.cost_vector(&sample);
        let min_dist = self
            .states
            .values()
            .map(|s| cost_vector_distance(&c, &s.model.cost_vector(&sample)))
            .fold(f64::INFINITY, f64::min);
        if min_dist > self.config.epsilon {
            self.stats.admitted += 1;
            Some(self.install(spec))
        } else {
            self.stats.rejected += 1;
            None
        }
    }

    /// Enforce `max_states` by evicting members of the closest pairs
    /// (never a protected id). Returns removal events to forward to the
    /// REORGANIZER.
    pub fn prune(&mut self, protected: &[LayoutId]) -> Vec<ManagerEvent> {
        let mut events = Vec::new();
        let Some(cap) = self.config.max_states else {
            return events;
        };
        while self.states.len() > cap {
            let sample = self.rtbs.to_vec();
            let ids: Vec<LayoutId> = self.states.keys().copied().collect();
            let vectors: BTreeMap<LayoutId, Vec<f64>> = ids
                .iter()
                .map(|&id| (id, self.states[&id].model.cost_vector(&sample)))
                .collect();
            // find the globally closest pair, evict its evictable member
            let mut best: Option<(f64, LayoutId)> = None;
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    let d = cost_vector_distance(&vectors[&a], &vectors[&b]);
                    // prefer evicting the newer (larger id) member; fall back
                    // to the older if the newer is protected
                    let victim = if !protected.contains(&b) {
                        Some(b)
                    } else if !protected.contains(&a) {
                        Some(a)
                    } else {
                        None
                    };
                    if let Some(v) = victim {
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, v));
                        }
                    }
                }
            }
            let Some((_, victim)) = best else {
                break; // everything is protected
            };
            self.states.remove(&victim);
            self.stats.pruned += 1;
            events.push(ManagerEvent::Removed(victim));
        }
        events
    }

    /// The R-TBS query sample (diagnostics and tests).
    pub fn admission_sample(&self) -> Vec<Query> {
        self.rtbs.to_vec()
    }

    /// The sliding window contents (used by the Greedy/Regret baselines so
    /// all online policies share identical candidate inputs).
    pub fn window_queries(&self) -> Vec<Query> {
        self.window.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_layout::{QdTreeGenerator, RangeGenerator, RangeLayout};
    use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};
    use oreo_storage::TableBuilder;

    fn table(n: i64) -> Table {
        let s = Arc::new(Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[
                Scalar::Int(i),
                Scalar::Int((i * 7) % 1000),
                Scalar::Int((i * 13) % 1000),
            ]);
        }
        b.finish()
    }

    fn manager(epsilon: f64, max_states: Option<usize>) -> (LayoutManager, LayoutId, Table) {
        let t = table(2000);
        let initial = Arc::new(RangeLayout::from_sample(&t, 0, 8));
        let cfg = ManagerConfig {
            epsilon,
            window: 50,
            generation_interval: 50,
            max_states,
            ..Default::default()
        };
        let (m, id) = LayoutManager::new(
            t.clone(),
            2000.0,
            Arc::new(QdTreeGenerator::new()),
            8,
            initial,
            cfg,
        );
        (m, id, t)
    }

    fn a_query(t: &Table, lo: i64) -> Query {
        QueryBuilder::new(t.schema())
            .between("a", lo, lo + 200)
            .build()
    }

    #[test]
    fn generates_on_interval_and_admits_useful_layouts() {
        let (mut m, initial, t) = manager(0.05, None);
        let mut added = Vec::new();
        for i in 0..100 {
            for e in m.observe(&a_query(&t, i % 10)) {
                if let ManagerEvent::Added(id) = e {
                    added.push(id);
                }
            }
        }
        // two generation rounds; a qd-tree on `a` is very different from the
        // initial range-on-ts layout, so the first candidate is admitted
        assert!(!added.is_empty(), "no layout admitted");
        assert!(m.num_states() >= 2);
        assert_ne!(added[0], initial);
        assert!(m.stats().generated >= 2);
    }

    #[test]
    fn duplicate_layouts_are_rejected() {
        let (mut m, _, t) = manager(0.05, None);
        // constant workload → generated qd-trees are identical; only the
        // first can be admitted
        for i in 0..500 {
            let _ = m.observe(&a_query(&t, 100).with_seq(i));
        }
        assert!(
            m.num_states() <= 3,
            "state space exploded: {}",
            m.num_states()
        );
        assert!(m.stats().rejected > 0, "expected rejections");
    }

    #[test]
    fn epsilon_one_admits_nothing() {
        let (mut m, _, t) = manager(1.0, None);
        for i in 0..300 {
            let _ = m.observe(&a_query(&t, i % 7));
        }
        assert_eq!(m.num_states(), 1, "ε=1 must reject everything");
        assert_eq!(m.stats().admitted, 0);
    }

    #[test]
    fn prune_respects_protected_states() {
        let (mut m, initial, t) = manager(0.0, Some(1));
        // drift the workload to force several admissions
        for i in 0..400i64 {
            let q = QueryBuilder::new(t.schema())
                .between(
                    if i % 100 < 50 { "a" } else { "b" },
                    (i * 3) % 500,
                    (i * 3) % 500 + 150,
                )
                .build();
            let _ = m.observe(&q);
        }
        let before = m.num_states();
        let events = m.prune(&[initial]);
        assert!(m.num_states() <= before);
        assert_eq!(m.num_states(), 1, "cap of 1 must be enforced");
        assert!(m.state(initial).is_some(), "protected state survived");
        for e in events {
            assert_ne!(e, ManagerEvent::Removed(initial));
        }
    }

    #[test]
    fn generation_uses_configured_source() {
        let t = table(1000);
        let initial = Arc::new(RangeLayout::from_sample(&t, 0, 4));
        let cfg = ManagerConfig {
            epsilon: 0.0,
            window: 20,
            generation_interval: 20,
            source: CandidateSource::Both,
            ..Default::default()
        };
        let (mut m, _) = LayoutManager::new(
            t.clone(),
            1000.0,
            Arc::new(RangeGenerator::new(1)),
            4,
            initial,
            cfg,
        );
        for i in 0..20 {
            let _ = m.observe(&a_query(&t, i));
        }
        // Both → two candidates per round
        assert_eq!(m.stats().generated, 2);
    }
}
