//! The assembled OREO framework (Fig. 1): LAYOUT MANAGER (producer of the
//! dynamic state space) + REORGANIZER (D-UMTS consumer), wired to a table.
//!
//! Per query, the framework:
//!
//! 1. lets the manager update its samples and possibly admit new candidate
//!    layouts (forwarded to the reorganizer as state-add events);
//! 2. steps the reorganizer with the *estimated* (metadata-only) costs of
//!    all states — a switch decision charges α immediately;
//! 3. applies the reorganization delay Δ: the *physical* layout changes only
//!    Δ queries after the decision (queries keep running on the old layout
//!    while background reorganization is in flight, §III-B/§VI-D5);
//! 4. charges the query's service cost against the physical layout's
//!    *exact* (fully materialized) metadata — decisions use estimates, the
//!    bill uses ground truth.

use crate::config::OreoConfig;
use crate::cost::CostLedger;
use crate::dumts::{Dumts, DumtsConfig};
use crate::layout_manager::{LayoutManager, ManagerEvent};
use oreo_layout::{build_exact_model, LayoutGenerator, SharedSpec};
use oreo_obs::{EventKind, EventSink, NullSink};
use oreo_query::Query;
use oreo_storage::{LayoutId, LayoutModel, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// What happened while observing one query.
#[derive(Clone, Debug, Default)]
pub struct StepReport {
    /// Stream position of the observed query.
    pub seq: u64,
    /// Service cost charged (fraction of table read on the physical layout).
    pub service_cost: f64,
    /// `Some(target)` when the reorganizer decided to switch this step
    /// (α was charged now; the physical switch lands after Δ queries).
    pub reorg_decision: Option<LayoutId>,
    /// The D-UMTS phase ended this step.
    pub phase_reset: bool,
    /// Layouts admitted to the state space this step.
    pub admitted: Vec<LayoutId>,
    /// Layouts pruned from the state space this step.
    pub removed: Vec<LayoutId>,
    /// Layout queries physically run on (after delay handling).
    pub physical: LayoutId,
    /// The reorganizer's logical current state.
    pub logical: LayoutId,
}

/// The OREO framework instance for one table.
///
/// # Example
///
/// ```
/// use oreo_core::{Oreo, OreoConfig};
/// use oreo_layout::{QdTreeGenerator, RangeLayout};
/// use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};
/// use oreo_storage::TableBuilder;
/// use std::sync::Arc;
///
/// let schema = Arc::new(Schema::from_pairs([("v", ColumnType::Int)]));
/// let mut b = TableBuilder::new(Arc::clone(&schema));
/// for i in 0..2_000i64 {
///     b.push_row(&[Scalar::Int((i * 17) % 1_000)]);
/// }
/// let table = Arc::new(b.finish());
///
/// let config = OreoConfig {
///     alpha: 10.0,
///     partitions: 8,
///     window: 50,
///     generation_interval: 50,
///     ..Default::default()
/// };
/// let initial = Arc::new(RangeLayout::from_sample(&table, 0, config.partitions));
/// let mut oreo = Oreo::new(
///     Arc::clone(&table),
///     initial,
///     Arc::new(QdTreeGenerator::new()),
///     config,
/// );
/// for i in 0..200i64 {
///     let lo = (i * 5) % 900;
///     let q = QueryBuilder::new(&schema).between("v", lo, lo + 50).build();
///     let report = oreo.observe(&q);
///     assert!(report.service_cost >= 0.0);
/// }
/// assert_eq!(oreo.ledger().queries, 200);
/// assert!(oreo.ledger().total() > 0.0);
/// ```
pub struct Oreo {
    config: OreoConfig,
    table: Arc<Table>,
    manager: LayoutManager,
    reorganizer: Dumts,
    /// Estimated (sample-scaled) models per live state — the costing surface
    /// for D-UMTS counters. Kept in sync with the manager's state space.
    estimated: HashMap<LayoutId, LayoutModel>,
    /// Routing specs per live state (needed to materialize on switch).
    specs: HashMap<LayoutId, SharedSpec>,
    /// Exact models, materialized lazily the first time a layout becomes
    /// physical. Retained even for pruned states (cheap: metadata only).
    exact: HashMap<LayoutId, LayoutModel>,
    /// Layout the queries are physically served on.
    physical: LayoutId,
    /// Pending switches: (effective sequence number, target layout).
    pending: VecDeque<(u64, LayoutId)>,
    ledger: CostLedger,
    seq: u64,
    /// Where policy events go. [`NullSink`] (the default) makes every
    /// emission a single cold branch; callers are expected to run the
    /// framework under a lock, so events land in ledger-operation order —
    /// which is what makes the journal replayable (see
    /// [`CostLedger::replay`]).
    sink: Arc<dyn EventSink>,
}

impl Oreo {
    /// Build a framework over `table`, starting from `initial_spec` (the
    /// default layout, e.g. range-partitioning by arrival time) and using
    /// `generator` for on-the-fly candidates.
    pub fn new(
        table: Arc<Table>,
        initial_spec: SharedSpec,
        generator: Arc<dyn LayoutGenerator>,
        config: OreoConfig,
    ) -> Self {
        let mut sample_rng = StdRng::seed_from_u64(config.seed ^ 0xD5A7);
        let data_sample = table.sample(&mut sample_rng, config.data_sample_rows);
        let (manager, initial_id) = LayoutManager::new(
            data_sample,
            table.num_rows() as f64,
            generator,
            config.partitions,
            Arc::clone(&initial_spec),
            config.manager_config(),
        );

        let reorganizer = Dumts::new(
            &[initial_id],
            DumtsConfig {
                alpha: config.alpha,
                transition: config.transition_policy(),
                stay_on_reset: config.stay_on_reset,
                mid_phase_admission: config.mid_phase_admission,
                seed: config.seed,
            },
        )
        .with_initial_state(initial_id);

        let mut estimated = HashMap::new();
        let mut specs = HashMap::new();
        let entry = manager.state(initial_id).expect("initial state installed");
        estimated.insert(initial_id, entry.model.clone());
        specs.insert(initial_id, Arc::clone(&entry.spec));

        let mut exact = HashMap::new();
        exact.insert(
            initial_id,
            build_exact_model(initial_spec.as_ref(), initial_id, &table),
        );

        Self {
            config,
            table,
            manager,
            reorganizer,
            estimated,
            specs,
            exact,
            physical: initial_id,
            pending: VecDeque::new(),
            ledger: CostLedger::new(),
            seq: 0,
            sink: Arc::new(NullSink),
        }
    }

    /// Route policy events (admissions, switch decisions, observe
    /// outcomes, landed reorganizations) into `sink` — typically an
    /// `oreo_obs::Journal`. Events are emitted at the exact ledger
    /// operation sites, so a journal drained from a sequential (FIFO)
    /// run replays to the ledger bit-for-bit.
    pub fn set_event_sink(&mut self, sink: Arc<dyn EventSink>) {
        self.sink = sink;
    }

    /// Observe (and "run") one query, advancing the whole framework.
    ///
    /// This is the sequential composition [`Oreo::decide`] →
    /// [`Oreo::apply_due`] → [`Oreo::settle`]: switch decisions use the
    /// *configured* delay Δ ([`OreoConfig::reorg_delay`]), landing
    /// automatically Δ queries after the decision. A concurrent driver
    /// (`oreo-engine`) calls the three halves itself so the physical switch
    /// can instead land when its background reorganization actually
    /// completes (measured Δ).
    pub fn observe(&mut self, query: &Query) -> StepReport {
        let mut report = self.decide(query);
        self.apply_due(report.seq);
        self.settle(query, &mut report);
        report
    }

    /// Decision half of [`Oreo::observe`]: advance the layout manager
    /// (sampling, candidate generation, ε-admission), refresh the
    /// sample-based predictor, and step the D-UMTS reorganizer. A switch
    /// decision charges α to the ledger immediately and enqueues the target
    /// as pending; the *physical* layout is untouched.
    pub fn decide(&mut self, query: &Query) -> StepReport {
        let seq = self.seq;
        self.seq += 1;
        let mut report = StepReport {
            seq,
            ..Default::default()
        };

        // 1. Layout manager: samples + candidate generation + admission.
        for event in self.manager.observe(query) {
            match event {
                ManagerEvent::Added(id) => {
                    let entry = self.manager.state(id).expect("just added");
                    self.estimated.insert(id, entry.model.clone());
                    self.specs.insert(id, Arc::clone(&entry.spec));
                    self.reorganizer.add_state(id);
                    report.admitted.push(id);
                }
                ManagerEvent::Removed(_) => unreachable!("observe never removes"),
            }
        }

        // 1b. Refresh the sample-based predictor (§IV-C) on generation
        // boundaries: transition scores = skipped fraction on the manager's
        // admission sample.
        if self.config.sample_predictor
            && (!report.admitted.is_empty()
                || (seq + 1).is_multiple_of(self.config.generation_interval))
        {
            let sample = self.manager.admission_sample();
            if !sample.is_empty() {
                let weights = self
                    .estimated
                    .iter()
                    .map(|(&id, m)| (id, (1.0 - m.mean_cost(&sample)).clamp(0.0, 1.0)))
                    .collect();
                self.reorganizer.set_external_weights(Some(weights));
            }
        }

        if self.sink.enabled() {
            for &layout in &report.admitted {
                self.sink.emit(EventKind::StateAdmitted {
                    stream_seq: seq,
                    layout,
                });
            }
        }

        // 2. Reorganizer step with estimated costs.
        let logical_before = self.reorganizer.current();
        let estimated = &self.estimated;
        let outcome = self
            .reorganizer
            .observe_query(|s| estimated.get(&s).map_or(1.0, |m| m.cost(query)));
        report.phase_reset = outcome.phase_reset;
        if report.phase_reset && self.sink.enabled() {
            self.sink.emit(EventKind::PhaseReset { stream_seq: seq });
        }
        if let Some(target) = outcome.switched_to {
            // The decision pays α now; the physical swap lands after Δ.
            self.ledger.add_reorg(self.config.alpha);
            self.pending
                .push_back((seq + self.config.reorg_delay, target));
            report.reorg_decision = Some(target);
            if self.sink.enabled() {
                self.sink.emit(EventKind::SwitchDecided {
                    stream_seq: seq,
                    from: logical_before,
                    target,
                    alpha: self.config.alpha,
                    pending: self.pending.len() as u64,
                });
            }
        }
        report
    }

    /// Land every pending switch whose configured delay has elapsed by
    /// stream position `seq` (the sequential Δ semantics, §VI-D5).
    pub fn apply_due(&mut self, seq: u64) {
        while let Some(&(effective, target)) = self.pending.front() {
            if effective > seq {
                break;
            }
            self.pending.pop_front();
            self.physical = target;
            if self.sink.enabled() {
                self.sink.emit(EventKind::ReorgApplied { target });
            }
        }
    }

    /// Land pending switches up to and including `target` *now*, regardless
    /// of the configured delay — the measured-Δ path: a concurrent driver
    /// calls this when its background reorganization toward `target` has
    /// published. Pending switches are FIFO, so decisions that preceded
    /// `target` (already superseded builds) land with it. Returns `true` if
    /// `target` was pending; when it is not, the pending queue is left
    /// untouched.
    pub fn complete_reorg(&mut self, target: LayoutId) -> bool {
        self.complete_reorg_with(target, None)
    }

    /// As [`Oreo::complete_reorg`], additionally installing `exact` as the
    /// target's exact metadata model so the next [`Oreo::settle`] does not
    /// have to materialize it. A background reorganizer has this model for
    /// free (the published snapshot's metadata is exact), and building it
    /// lazily would otherwise run a full-table routing pass under whatever
    /// lock serializes the framework.
    pub fn complete_reorg_with(&mut self, target: LayoutId, exact: Option<LayoutModel>) -> bool {
        if !self.pending.iter().any(|&(_, t)| t == target) {
            return false;
        }
        if let Some(model) = exact {
            debug_assert_eq!(model.id(), target, "exact model is for another layout");
            self.exact.entry(target).or_insert(model);
        }
        while let Some((_, t)) = self.pending.pop_front() {
            self.physical = t;
            if self.sink.enabled() {
                self.sink.emit(EventKind::ReorgApplied { target: t });
            }
            if t == target {
                break;
            }
        }
        true
    }

    /// Settlement half of [`Oreo::observe`]: charge the query's service
    /// cost against the physical layout's exact metadata and prune the
    /// state space (protecting the current, physical, and pending states).
    pub fn settle(&mut self, query: &Query, report: &mut StepReport) {
        // 4. Charge the service cost on the physical layout's exact model.
        let service = self.exact_model(self.physical).cost(query);
        self.ledger.add_query(service);
        report.service_cost = service;
        if self.sink.enabled() {
            let logical = self.reorganizer.current();
            self.sink.emit(EventKind::QueryObserved {
                stream_seq: report.seq,
                service_cost: service,
                physical: self.physical,
                logical,
                counter: self.reorganizer.counter(logical).unwrap_or(0.0),
            });
        }

        // 5. Optional pruning, protecting the states the system depends on.
        let mut protected = vec![self.reorganizer.current(), self.physical];
        protected.extend(self.pending.iter().map(|&(_, t)| t));
        for event in self.manager.prune(&protected) {
            if let ManagerEvent::Removed(id) = event {
                self.estimated.remove(&id);
                self.specs.remove(&id);
                let o = self.reorganizer.remove_state(id);
                debug_assert!(
                    o.switched_to.is_none(),
                    "pruning never evicts the current state"
                );
                report.removed.push(id);
                if self.sink.enabled() {
                    self.sink.emit(EventKind::StateRemoved {
                        stream_seq: report.seq,
                        layout: id,
                    });
                }
            }
        }

        report.physical = self.physical;
        report.logical = self.reorganizer.current();
    }

    /// Materialize (or fetch) the exact metadata model of a layout.
    fn exact_model(&mut self, id: LayoutId) -> &LayoutModel {
        if !self.exact.contains_key(&id) {
            let spec = self.specs.get(&id).expect("physical layout has a spec");
            let model = build_exact_model(spec.as_ref(), id, &self.table);
            self.exact.insert(id, model);
        }
        &self.exact[&id]
    }

    /// Exact service cost `query` would incur on the *current physical*
    /// layout, without advancing the stream or the ledger. This is the
    /// observation surface an MTS adversary is entitled to (it may inspect
    /// the online algorithm's state before emitting the next task); the
    /// workload zoo's adversarial scenario probes it to emit, each step,
    /// the query the layout serves worst.
    pub fn physical_cost(&mut self, query: &Query) -> f64 {
        let id = self.physical;
        self.exact_model(id).cost(query)
    }

    /// Replace the table this framework optimizes — the fold path: a
    /// compacting reorganizer merged delta partitions into the base, so
    /// every *exact* model is stale and must be rebuilt (lazily) against
    /// the merged rows. Estimated models and the manager's samples refresh
    /// on their own cadence (they are sample-scaled approximations by
    /// design, §IV-C); only the billing surface must be exact immediately.
    pub fn set_table(&mut self, table: Arc<Table>) {
        self.table = table;
        self.exact.clear();
    }

    /// Charge compaction work (folding ingested deltas into the base
    /// layout) to the ledger and journal it. `cost` is in the same unit as
    /// α — fractions of a full table scan — so the total cost the
    /// competitive analysis sees includes the write path's merge work.
    pub fn charge_compaction(&mut self, cost: f64, rows_written: u64) {
        self.ledger.add_compaction(cost);
        if self.sink.enabled() {
            self.sink.emit(EventKind::CompactionCharged {
                stream_seq: self.seq,
                rows_written,
                cost,
            });
        }
    }

    /// Accumulated costs.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// The table this framework optimizes.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// Routing spec of a live (or pending/physical) state, if still known —
    /// what a concurrent driver materializes a snapshot from.
    pub fn spec(&self, id: LayoutId) -> Option<SharedSpec> {
        self.specs.get(&id).cloned()
    }

    /// Targets of decided switches whose physical reorganization has not
    /// landed yet, in decision order.
    pub fn pending_targets(&self) -> Vec<LayoutId> {
        self.pending.iter().map(|&(_, t)| t).collect()
    }

    /// The layout queries are physically served on.
    pub fn physical_layout(&self) -> LayoutId {
        self.physical
    }

    /// The reorganizer's logical state.
    pub fn logical_layout(&self) -> LayoutId {
        self.reorganizer.current()
    }

    /// Current dynamic state-space size.
    pub fn num_states(&self) -> usize {
        self.manager.num_states()
    }

    /// Largest state space seen (|S_max| of the competitive bound).
    pub fn max_states_seen(&self) -> usize {
        self.reorganizer.max_states_seen()
    }

    /// D-UMTS phase count.
    pub fn phases(&self) -> u64 {
        self.reorganizer.phases()
    }

    /// Switches decided so far.
    pub fn switches(&self) -> u64 {
        self.reorganizer.switches()
    }

    /// Layout-manager statistics (admissions, rejections, …).
    pub fn manager_stats(&self) -> crate::layout_manager::ManagerStats {
        self.manager.stats()
    }

    /// Human-readable name of a layout, when still known.
    pub fn layout_name(&self, id: LayoutId) -> Option<String> {
        self.estimated
            .get(&id)
            .map(|m| m.name().to_string())
            .or_else(|| self.exact.get(&id).map(|m| m.name().to_string()))
    }

    /// The configuration in force.
    pub fn config(&self) -> &OreoConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_layout::{QdTreeGenerator, RangeLayout};
    use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};
    use oreo_storage::TableBuilder;

    fn table(n: i64) -> Arc<Table> {
        let s = Arc::new(Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&s));
        for i in 0..n {
            b.push_row(&[
                Scalar::Int(i),
                Scalar::Int((i * 7) % 1000),
                Scalar::Int((i * 13) % 1000),
            ]);
        }
        Arc::new(b.finish())
    }

    fn framework(table: &Arc<Table>, config: OreoConfig) -> Oreo {
        let initial = Arc::new(RangeLayout::from_sample(table, 0, config.partitions));
        Oreo::new(
            Arc::clone(table),
            initial,
            Arc::new(QdTreeGenerator::new()),
            config,
        )
    }

    fn drifting_queries(t: &Arc<Table>, n: usize) -> Vec<Query> {
        // phase 1: queries on `a`; phase 2: queries on `b`
        (0..n)
            .map(|i| {
                let col = if i < n / 2 { "a" } else { "b" };
                let lo = ((i * 37) % 900) as i64;
                QueryBuilder::new(t.schema())
                    .between(col, lo, lo + 60)
                    .build()
                    .with_seq(i as u64)
            })
            .collect()
    }

    #[test]
    fn adapts_to_drifting_workload() {
        let t = table(4000);
        let config = OreoConfig {
            alpha: 5.0,
            window: 50,
            generation_interval: 50,
            data_sample_rows: 1000,
            partitions: 16,
            ..Default::default()
        };
        let mut oreo = framework(&t, config);
        let queries = drifting_queries(&t, 600);
        let mut admitted = 0;
        for q in &queries {
            let r = oreo.observe(q);
            admitted += r.admitted.len();
        }
        assert!(admitted >= 1, "no candidate layouts admitted");
        assert!(oreo.switches() >= 1, "never reorganized");
        let l = oreo.ledger();
        assert_eq!(l.queries, 600);
        assert!(l.query_cost > 0.0);
        assert!(l.reorg_cost > 0.0);
        // adapting must beat paying full scans throughout
        assert!(l.query_cost < 600.0 * 0.9);
    }

    #[test]
    fn ledger_reorg_cost_is_switches_times_alpha() {
        let t = table(2000);
        let config = OreoConfig {
            alpha: 4.0,
            window: 40,
            generation_interval: 40,
            partitions: 8,
            data_sample_rows: 500,
            ..Default::default()
        };
        let mut oreo = framework(&t, config);
        for q in drifting_queries(&t, 400) {
            oreo.observe(&q);
        }
        let l = *oreo.ledger();
        assert!((l.reorg_cost - l.switches as f64 * 4.0).abs() < 1e-9);
        assert_eq!(l.switches, oreo.switches());
    }

    #[test]
    fn delay_defers_physical_switch() {
        let t = table(2000);
        let config = OreoConfig {
            alpha: 3.0,
            window: 30,
            generation_interval: 30,
            partitions: 8,
            data_sample_rows: 500,
            reorg_delay: 25,
            ..Default::default()
        };
        let mut oreo = framework(&t, config);
        let queries = drifting_queries(&t, 500);
        let mut decision_seq = None;
        let mut physical_change_seq = None;
        let mut last_physical = oreo.physical_layout();
        for q in &queries {
            let r = oreo.observe(q);
            if decision_seq.is_none() && r.reorg_decision.is_some() {
                decision_seq = Some(r.seq);
            }
            if physical_change_seq.is_none() && r.physical != last_physical {
                physical_change_seq = Some(r.seq);
            }
            last_physical = r.physical;
        }
        let (d, p) = (
            decision_seq.expect("a switch decision"),
            physical_change_seq.expect("a physical switch"),
        );
        assert_eq!(p, d + 25, "physical switch must land Δ after the decision");
    }

    #[test]
    fn delayed_costs_are_at_least_immediate_costs() {
        let t = table(2000);
        let base = OreoConfig {
            alpha: 5.0,
            window: 40,
            generation_interval: 40,
            partitions: 8,
            data_sample_rows: 500,
            ..Default::default()
        };
        let queries = drifting_queries(&t, 600);
        let run = |delay: u64| {
            let mut oreo = framework(&t, base.clone().with_delay(delay));
            for q in &queries {
                oreo.observe(q);
            }
            *oreo.ledger()
        };
        let immediate = run(0);
        let delayed = run(40);
        // same decisions (same seeds), same reorg cost; delay only hurts
        // query cost (§VI-D5)
        assert_eq!(immediate.switches, delayed.switches);
        assert!(
            delayed.query_cost >= immediate.query_cost - 1e-9,
            "delayed {} < immediate {}",
            delayed.query_cost,
            immediate.query_cost
        );
    }

    #[test]
    fn max_states_cap_is_enforced() {
        let t = table(2000);
        let config = OreoConfig {
            alpha: 5.0,
            window: 30,
            generation_interval: 30,
            partitions: 8,
            data_sample_rows: 500,
            epsilon: 0.0,
            max_states: Some(3),
            ..Default::default()
        };
        let mut oreo = framework(&t, config);
        for q in drifting_queries(&t, 500) {
            oreo.observe(&q);
            assert!(
                oreo.num_states() <= 3,
                "cap violated: {}",
                oreo.num_states()
            );
        }
    }

    #[test]
    fn split_halves_compose_to_observe() {
        let t = table(2000);
        let config = OreoConfig {
            alpha: 5.0,
            window: 40,
            generation_interval: 40,
            partitions: 8,
            data_sample_rows: 500,
            reorg_delay: 10,
            ..Default::default()
        };
        let queries = drifting_queries(&t, 400);
        let mut whole = framework(&t, config.clone());
        let mut split = framework(&t, config);
        for q in &queries {
            let a = whole.observe(q);
            let mut b = split.decide(q);
            split.apply_due(b.seq);
            split.settle(q, &mut b);
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.reorg_decision, b.reorg_decision);
            assert_eq!(a.physical, b.physical);
            assert_eq!(a.logical, b.logical);
            assert!((a.service_cost - b.service_cost).abs() < 1e-12);
        }
        assert_eq!(*whole.ledger(), *split.ledger());
    }

    #[test]
    fn complete_reorg_lands_pending_switch_early() {
        let t = table(2000);
        let config = OreoConfig {
            alpha: 3.0,
            window: 30,
            generation_interval: 30,
            partitions: 8,
            data_sample_rows: 500,
            reorg_delay: 1_000_000, // never lands via apply_due
            ..Default::default()
        };
        let mut oreo = framework(&t, config);
        let queries = drifting_queries(&t, 500);
        let initial = oreo.physical_layout();
        let mut landed = false;
        for q in &queries {
            let mut r = oreo.decide(q);
            // measured-Δ path: no apply_due; land explicitly on decision
            if let Some(target) = r.reorg_decision {
                assert_eq!(oreo.pending_targets().last(), Some(&target));
                assert!(oreo.spec(target).is_some(), "pending target has a spec");
                // a miss must not disturb the pending queue
                assert!(!oreo.complete_reorg(u64::MAX));
                assert_eq!(oreo.pending_targets().last(), Some(&target));
                assert!(oreo.complete_reorg(target));
                assert_eq!(oreo.physical_layout(), target);
                landed = true;
            }
            oreo.settle(q, &mut r);
        }
        assert!(landed, "no switch decided");
        assert_ne!(oreo.physical_layout(), initial);
        assert!(oreo.pending_targets().is_empty());
        assert!(!oreo.complete_reorg(12345), "nothing pending");
    }

    #[test]
    fn journal_replay_reproduces_ledger_bit_for_bit() {
        use oreo_obs::Journal;

        let t = table(2000);
        let config = OreoConfig {
            alpha: 5.0,
            window: 40,
            generation_interval: 40,
            partitions: 8,
            data_sample_rows: 500,
            reorg_delay: 10,
            ..Default::default()
        };
        let journal = Arc::new(Journal::new(1, 1 << 14));
        let mut oreo = framework(&t, config);
        oreo.set_event_sink(Arc::clone(&journal) as Arc<dyn EventSink>);
        for q in drifting_queries(&t, 400) {
            oreo.observe(&q);
        }
        assert!(oreo.switches() >= 1, "want at least one switch to replay");
        assert_eq!(journal.events_dropped(), 0, "journal sized for the run");
        let events = journal.events();
        let replayed = CostLedger::replay(&events);
        // bit-for-bit: the replay performs the same f64 additions in the
        // same order the live ledger did
        assert_eq!(replayed, *oreo.ledger());
        // every query produced exactly one observe event, every switch one
        // decision event, and each landed switch one applied event
        let observed = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::QueryObserved { .. }))
            .count();
        let decided = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SwitchDecided { .. }))
            .count();
        let applied = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ReorgApplied { .. }))
            .count();
        assert_eq!(observed as u64, oreo.ledger().queries);
        assert_eq!(decided as u64, oreo.ledger().switches);
        assert_eq!(applied as u64, oreo.ledger().switches, "delay 10: all land");
    }

    #[test]
    fn deterministic_across_runs() {
        let t = table(1500);
        let config = OreoConfig {
            alpha: 6.0,
            window: 30,
            generation_interval: 30,
            partitions: 8,
            data_sample_rows: 400,
            seed: 42,
            ..Default::default()
        };
        let queries = drifting_queries(&t, 300);
        let run = || {
            let mut oreo = framework(&t, config.clone());
            for q in &queries {
                oreo.observe(q);
            }
            (*oreo.ledger(), oreo.switches(), oreo.num_states())
        };
        assert_eq!(run(), run());
    }
}
