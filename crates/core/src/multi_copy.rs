//! Multi-copy layouts (the Appendix D direction, §VIII).
//!
//! OREO normally keeps a single materialized copy of the data; every switch
//! pays the full reorganization cost α. With extra storage budget the system
//! can *cache* the last `m` materialized layouts: switching back to a cached
//! layout is a near-free pointer swap (cost β ≪ α), only evictions force a
//! full rebuild. This module provides the cache-and-charge policy that a
//! multi-copy variant of Algorithm 4 plugs into, plus cost accounting.

use crate::dumts::StateId;
use std::collections::VecDeque;

/// LRU cache of materialized layouts with swap-vs-rebuild charging.
#[derive(Clone, Debug)]
pub struct MultiCopyCache {
    /// Max simultaneously materialized layouts (≥ 1; the active one counts).
    capacity: usize,
    /// Full reorganization cost (cache miss).
    alpha: f64,
    /// Swap cost for switching to an already-materialized layout.
    beta: f64,
    /// Most-recently-used first.
    lru: VecDeque<StateId>,
    hits: u64,
    misses: u64,
}

impl MultiCopyCache {
    /// # Panics
    /// Panics when `capacity == 0` or `beta > alpha`.
    pub fn new(capacity: usize, alpha: f64, beta: f64, initial: StateId) -> Self {
        assert!(capacity >= 1, "need room for the active layout");
        assert!(beta <= alpha, "a swap cannot cost more than a rebuild");
        let mut lru = VecDeque::with_capacity(capacity);
        lru.push_front(initial);
        Self {
            capacity,
            alpha,
            beta,
            lru,
            hits: 0,
            misses: 0,
        }
    }

    /// Charge a switch to `target`: β on a cache hit, α on a miss (evicting
    /// the least-recently-used copy if full). Returns the cost.
    pub fn charge_switch(&mut self, target: StateId) -> f64 {
        if let Some(pos) = self.lru.iter().position(|&s| s == target) {
            let s = self.lru.remove(pos).expect("position valid");
            self.lru.push_front(s);
            self.hits += 1;
            self.beta
        } else {
            if self.lru.len() == self.capacity {
                self.lru.pop_back();
            }
            self.lru.push_front(target);
            self.misses += 1;
            self.alpha
        }
    }

    /// Drop a layout from the cache (e.g. when the manager prunes it).
    pub fn invalidate(&mut self, state: StateId) {
        self.lru.retain(|&s| s != state);
    }

    /// Materialized layouts, most recent first.
    pub fn cached(&self) -> impl Iterator<Item = StateId> + '_ {
        self.lru.iter().copied()
    }

    /// Whether `state` is currently materialized.
    pub fn is_cached(&self, state: StateId) -> bool {
        self.lru.contains(&state)
    }

    /// Switches that found the target layout already materialized.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Switches that had to materialize the target layout.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dumts::{Dumts, DumtsConfig};
    use crate::predictor::TransitionPolicy;

    #[test]
    fn hit_costs_beta_miss_costs_alpha() {
        let mut c = MultiCopyCache::new(2, 80.0, 2.0, 0);
        assert_eq!(c.charge_switch(1), 80.0); // miss: {1, 0}
        assert_eq!(c.charge_switch(0), 2.0); // hit:  {0, 1}
        assert_eq!(c.charge_switch(2), 80.0); // miss, evicts 1: {2, 0}
        assert!(!c.is_cached(1));
        assert_eq!(c.charge_switch(1), 80.0); // miss again
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn capacity_one_degenerates_to_plain_alpha() {
        let mut c = MultiCopyCache::new(1, 80.0, 2.0, 0);
        for target in [1u64, 0, 1, 0] {
            assert_eq!(c.charge_switch(target), 80.0);
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn invalidate_removes_copies() {
        let mut c = MultiCopyCache::new(3, 10.0, 1.0, 0);
        c.charge_switch(1);
        c.charge_switch(2);
        c.invalidate(1);
        assert!(!c.is_cached(1));
        assert_eq!(c.charge_switch(1), 10.0, "rebuild after invalidation");
    }

    /// On an oscillating workload, a 2-copy cache slashes reorganization
    /// cost versus the single-copy accounting of the same D-UMTS run.
    #[test]
    fn oscillating_workload_benefits_from_cache() {
        let alpha = 10.0;
        let mut d = Dumts::new(
            &[0, 1],
            DumtsConfig {
                alpha,
                transition: TransitionPolicy::Uniform,
                stay_on_reset: true,
                mid_phase_admission: false,
                seed: 4,
            },
        )
        .with_initial_state(0);
        let mut single = 0.0;
        let mut cache = MultiCopyCache::new(2, alpha, 0.5, 0);
        let mut multi = 0.0;
        for t in 0..2_000 {
            let cheap = (t / 100) % 2; // workload flips every 100 queries
            let o = d.observe_query(|s| if s == cheap { 0.02 } else { 0.9 });
            if let Some(target) = o.switched_to {
                single += alpha;
                multi += cache.charge_switch(target);
            }
        }
        assert!(d.switches() >= 4, "workload must induce switching");
        assert!(
            multi < single / 2.0,
            "cache should at least halve reorg cost: multi {multi} vs single {single}"
        );
        assert!(cache.hits() > 0);
    }

    #[test]
    #[should_panic(expected = "swap cannot cost more")]
    fn beta_above_alpha_rejected() {
        MultiCopyCache::new(2, 1.0, 2.0, 0);
    }
}
