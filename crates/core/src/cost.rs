//! Cost accounting: the ledger every policy reports into, so that
//! harnesses compare identical quantities — §III-A's objective of total
//! query cost plus total reorganization cost.

use serde::{Deserialize, Serialize};

/// Accumulated costs over a (partial) query stream, in *logical* units:
/// query cost = fraction of the table read (a unit-interval value per
/// query), and each reorganization costs α.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Σ service costs.
    pub query_cost: f64,
    /// Σ movement costs (switches × α).
    pub reorg_cost: f64,
    /// Number of layout switches.
    pub switches: u64,
    /// Number of queries accounted.
    pub queries: u64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one serviced query.
    pub fn add_query(&mut self, cost: f64) {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&cost), "query cost {cost}");
        self.query_cost += cost;
        self.queries += 1;
    }

    /// Record one reorganization of cost `alpha`.
    pub fn add_reorg(&mut self, alpha: f64) {
        self.reorg_cost += alpha;
        self.switches += 1;
    }

    /// Total objective: query + reorganization cost.
    pub fn total(&self) -> f64 {
        self.query_cost + self.reorg_cost
    }

    /// Mean query cost per query.
    pub fn mean_query_cost(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.query_cost / self.queries as f64
        }
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.query_cost += other.query_cost;
        self.reorg_cost += other.reorg_cost;
        self.switches += other.switches;
        self.queries += other.queries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_totals() {
        let mut l = CostLedger::new();
        l.add_query(0.5);
        l.add_query(0.25);
        l.add_reorg(80.0);
        assert_eq!(l.queries, 2);
        assert_eq!(l.switches, 1);
        assert!((l.total() - 80.75).abs() < 1e-12);
        assert!((l.mean_query_cost() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_mean_is_zero() {
        assert_eq!(CostLedger::new().mean_query_cost(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CostLedger::new();
        a.add_query(1.0);
        let mut b = CostLedger::new();
        b.add_query(0.5);
        b.add_reorg(10.0);
        a.merge(&b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.switches, 1);
        assert!((a.total() - 11.5).abs() < 1e-12);
    }
}
