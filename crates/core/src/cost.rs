//! Cost accounting: the ledger every policy reports into, so that
//! harnesses compare identical quantities — §III-A's objective of total
//! query cost plus total reorganization cost.

use oreo_obs::{Event, EventKind};
use serde::{Deserialize, Serialize};

/// Accumulated costs over a (partial) query stream, in *logical* units:
/// query cost = fraction of the table read (a unit-interval value per
/// query), and each reorganization costs α.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    /// Σ service costs.
    pub query_cost: f64,
    /// Σ movement costs (switches × α).
    pub reorg_cost: f64,
    /// Number of layout switches.
    pub switches: u64,
    /// Number of queries accounted.
    pub queries: u64,
    /// Σ ingest-compaction costs (delta-run merges and background folds,
    /// in full-table-scan equivalents like α). Zero for read-only runs,
    /// which keeps ledger parity with pre-ingestion harnesses exact.
    #[serde(default)]
    pub compaction_cost: f64,
    /// Number of compaction charges (merges + folds).
    #[serde(default)]
    pub compactions: u64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one serviced query.
    pub fn add_query(&mut self, cost: f64) {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&cost), "query cost {cost}");
        self.query_cost += cost;
        self.queries += 1;
    }

    /// Record one reorganization of cost `alpha`.
    pub fn add_reorg(&mut self, alpha: f64) {
        self.reorg_cost += alpha;
        self.switches += 1;
    }

    /// Record one ingest compaction (delta-run merge or background fold)
    /// of `cost` full-table-scan equivalents.
    pub fn add_compaction(&mut self, cost: f64) {
        debug_assert!(cost >= 0.0, "compaction cost {cost}");
        self.compaction_cost += cost;
        self.compactions += 1;
    }

    /// Total objective: query + reorganization + compaction cost.
    pub fn total(&self) -> f64 {
        self.query_cost + self.reorg_cost + self.compaction_cost
    }

    /// Mean query cost per query.
    pub fn mean_query_cost(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.query_cost / self.queries as f64
        }
    }

    /// Rebuild a ledger from a seq-ordered policy event journal: every
    /// [`EventKind::SwitchDecided`] replays `add_reorg(alpha)` and every
    /// [`EventKind::QueryObserved`] replays `add_query(service_cost)`, in
    /// journal order. `Oreo` emits those events at the exact ledger
    /// operation sites (under whatever lock serializes the framework), so
    /// for a sequential FIFO run the replay reproduces the live ledger
    /// **bit-for-bit** — f64 addition order included. That turns ledger
    /// parity from one end-of-run equality into an auditable event
    /// stream: any divergence pinpoints the first mis-accounted event.
    pub fn replay(events: &[Event]) -> Self {
        let mut ledger = Self::new();
        for e in events {
            match e.kind {
                EventKind::QueryObserved { service_cost, .. } => ledger.add_query(service_cost),
                EventKind::SwitchDecided { alpha, .. } => ledger.add_reorg(alpha),
                EventKind::CompactionCharged { cost, .. } => ledger.add_compaction(cost),
                _ => {}
            }
        }
        ledger
    }

    /// Merge another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.query_cost += other.query_cost;
        self.reorg_cost += other.reorg_cost;
        self.switches += other.switches;
        self.queries += other.queries;
        self.compaction_cost += other.compaction_cost;
        self.compactions += other.compactions;
    }
}

/// Accumulator turning a serving run's raw measurements into an
/// *empirical* α — the paper's Table I ratio (time of one reorganization
/// over time of one full-table scan), observed on the live query stream
/// instead of a dedicated offline experiment.
///
/// The serving layer feeds it two kinds of samples:
///
/// * per-query scans (bytes of the partitions actually read + wall-clock),
///   which calibrate the substrate's scan throughput; a *full* scan is then
///   `table_bytes / throughput` seconds — queries are pruned, so the full
///   scan the α denominator wants is extrapolated, not assumed;
/// * background reorganizations (bytes written + wall-clock of the aside
///   rewrite, fsync and commit included), the α numerator.
///
/// Scans come in two temperatures. [`AlphaEstimator::record_scan`] records
/// a **warm** sample — a memory-resident or buffer-pool-served scan.
/// [`AlphaEstimator::record_cold_scan`] records a scan whose bytes came
/// mostly from disk (buffer-pool misses). Table I's denominator is a
/// *disk* full scan, so [`AlphaEstimator::alpha`] extrapolates from the
/// cold throughput whenever cold samples exist and only falls back to the
/// warm (memory-bandwidth-shaped) throughput without them;
/// [`AlphaEstimator::alpha_cold`] / [`AlphaEstimator::alpha_warm`] expose
/// the two readings separately.
///
/// # Example
///
/// ```
/// use oreo_core::AlphaEstimator;
///
/// // 1 MB table; queries scan at 100 MB/s, one rewrite took 0.8 s.
/// let mut a = AlphaEstimator::new(1_000_000);
/// a.record_scan(500_000, 0.005);
/// a.record_scan(250_000, 0.0025);
/// a.record_reorg(1_000_000, 0.8);
/// assert!((a.full_scan_seconds().unwrap() - 0.01).abs() < 1e-9);
/// assert!((a.alpha().unwrap() - 80.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AlphaEstimator {
    table_bytes: u64,
    warm_bytes: u64,
    warm_seconds: f64,
    warm_scans: u64,
    cold_bytes: u64,
    cold_seconds: f64,
    cold_scans: u64,
    reorg_bytes: u64,
    reorg_seconds: f64,
    reorgs: u64,
    merge_bytes: u64,
    merge_seconds: f64,
    merges: u64,
}

impl AlphaEstimator {
    /// An estimator for a table whose full scan reads `table_bytes`.
    pub fn new(table_bytes: u64) -> Self {
        Self {
            table_bytes,
            ..Self::default()
        }
    }

    /// Record one served *warm* query (memory-resident or buffer-pool-hit
    /// scan): bytes of the partitions read (after pruning) and the scan's
    /// wall-clock seconds.
    pub fn record_scan(&mut self, bytes: u64, seconds: f64) {
        self.warm_bytes += bytes;
        self.warm_seconds += seconds;
        self.warm_scans += 1;
    }

    /// Record one served *cold* query — a scan whose bytes came mostly
    /// from disk (buffer-pool misses).
    pub fn record_cold_scan(&mut self, bytes: u64, seconds: f64) {
        self.cold_bytes += bytes;
        self.cold_seconds += seconds;
        self.cold_scans += 1;
    }

    /// Record one completed reorganization: bytes written by the aside
    /// rewrite and its wall-clock seconds (build + write + fsync + commit).
    pub fn record_reorg(&mut self, bytes: u64, seconds: f64) {
        self.record_reorgs(bytes, seconds, 1);
    }

    /// Record `count` completed reorganizations at once from their
    /// *totals* — what a live exporter has (monotone byte/second counters
    /// plus a rewrite count) when it rebuilds an estimator per snapshot.
    /// Equivalent to `count` [`AlphaEstimator::record_reorg`] calls
    /// summing to the same totals; a no-op when `count == 0`.
    pub fn record_reorgs(&mut self, bytes: u64, seconds: f64, count: u64) {
        if count == 0 {
            return;
        }
        self.reorg_bytes += bytes;
        self.reorg_seconds += seconds;
        self.reorgs += count;
    }

    /// Record one ingest-side delta merge (a [`MergePolicy`] run rewrite
    /// or a background fold's delta portion): bytes rewritten and
    /// wall-clock. Tracked separately from reorganizations so α̂ keeps
    /// Table I's meaning (one *layout rewrite* over one full scan) while
    /// the merge tax stays observable next to it.
    ///
    /// [`MergePolicy`]: oreo_storage::MergePolicy
    pub fn record_merge(&mut self, bytes: u64, seconds: f64) {
        self.record_merges(bytes, seconds, 1);
    }

    /// Record `count` merges from their totals (exporter rebuild path);
    /// a no-op when `count == 0`.
    pub fn record_merges(&mut self, bytes: u64, seconds: f64, count: u64) {
        if count == 0 {
            return;
        }
        self.merge_bytes += bytes;
        self.merge_seconds += seconds;
        self.merges += count;
    }

    /// Mean write amplification tax per merge relative to a full rewrite:
    /// mean merge bytes over the table's full-scan bytes. `None` until a
    /// merge has been recorded.
    pub fn mean_merge_fraction(&self) -> Option<f64> {
        (self.merges > 0 && self.table_bytes > 0)
            .then(|| self.merge_bytes as f64 / self.merges as f64 / self.table_bytes as f64)
    }

    /// Combined (warm + cold) scan throughput in bytes/second (`None` until
    /// a scan with nonzero bytes and time has been recorded).
    pub fn scan_bytes_per_second(&self) -> Option<f64> {
        let bytes = self.warm_bytes + self.cold_bytes;
        let seconds = self.warm_seconds + self.cold_seconds;
        (bytes > 0 && seconds > 0.0).then(|| bytes as f64 / seconds)
    }

    /// Cold-scan throughput in bytes/second (`None` without cold samples).
    pub fn cold_scan_bytes_per_second(&self) -> Option<f64> {
        (self.cold_bytes > 0 && self.cold_seconds > 0.0)
            .then(|| self.cold_bytes as f64 / self.cold_seconds)
    }

    /// Warm-scan throughput in bytes/second (`None` without warm samples).
    pub fn warm_scan_bytes_per_second(&self) -> Option<f64> {
        (self.warm_bytes > 0 && self.warm_seconds > 0.0)
            .then(|| self.warm_bytes as f64 / self.warm_seconds)
    }

    /// Extrapolated wall-clock of one *full* table scan — the α
    /// denominator. Uses the cold (disk) throughput when cold samples
    /// exist; otherwise falls back to the combined throughput, which for a
    /// memory-resident run means α̂ is extrapolated from memory bandwidth
    /// (the pre-buffer-pool behavior).
    pub fn full_scan_seconds(&self) -> Option<f64> {
        self.cold_scan_bytes_per_second()
            .or_else(|| self.scan_bytes_per_second())
            .map(|bps| self.table_bytes as f64 / bps)
    }

    /// Mean wall-clock of one reorganization — the α numerator (`None`
    /// until a reorganization has been recorded).
    pub fn mean_reorg_seconds(&self) -> Option<f64> {
        (self.reorgs > 0).then(|| self.reorg_seconds / self.reorgs as f64)
    }

    /// Mean bytes written per reorganization.
    pub fn mean_reorg_bytes(&self) -> Option<f64> {
        (self.reorgs > 0).then(|| self.reorg_bytes as f64 / self.reorgs as f64)
    }

    /// The empirical α: mean reorganization time over extrapolated
    /// full-scan time (cold-preferring, see
    /// [`AlphaEstimator::full_scan_seconds`]). `None` until both sides
    /// have samples.
    pub fn alpha(&self) -> Option<f64> {
        match (self.mean_reorg_seconds(), self.full_scan_seconds()) {
            (Some(reorg), Some(scan)) if scan > 0.0 => Some(reorg / scan),
            _ => None,
        }
    }

    /// α extrapolated from the cold (disk) scan throughput only — the
    /// honest Table I reading. `None` without cold samples or rewrites.
    pub fn alpha_cold(&self) -> Option<f64> {
        match (self.mean_reorg_seconds(), self.cold_scan_bytes_per_second()) {
            (Some(reorg), Some(bps)) if bps > 0.0 => Some(reorg / (self.table_bytes as f64 / bps)),
            _ => None,
        }
    }

    /// α extrapolated from the warm (memory/pool-hit) scan throughput —
    /// the optimistic reading a fully cached working set would see.
    pub fn alpha_warm(&self) -> Option<f64> {
        match (self.mean_reorg_seconds(), self.warm_scan_bytes_per_second()) {
            (Some(reorg), Some(bps)) if bps > 0.0 => Some(reorg / (self.table_bytes as f64 / bps)),
            _ => None,
        }
    }

    /// Bytes a full scan of the table reads.
    pub fn table_bytes(&self) -> u64 {
        self.table_bytes
    }

    /// Scans recorded (warm + cold).
    pub fn scans(&self) -> u64 {
        self.warm_scans + self.cold_scans
    }

    /// Cold scans recorded.
    pub fn cold_scans(&self) -> u64 {
        self.cold_scans
    }

    /// Total bytes scanned across recorded queries (warm + cold).
    pub fn scan_bytes(&self) -> u64 {
        self.warm_bytes + self.cold_bytes
    }

    /// Total scan wall-clock seconds across recorded queries (warm + cold).
    pub fn scan_seconds(&self) -> f64 {
        self.warm_seconds + self.cold_seconds
    }

    /// Reorganizations recorded.
    pub fn reorgs(&self) -> u64 {
        self.reorgs
    }

    /// Total bytes written across recorded reorganizations.
    pub fn reorg_bytes(&self) -> u64 {
        self.reorg_bytes
    }

    /// Total reorganization wall-clock seconds.
    pub fn reorg_seconds(&self) -> f64 {
        self.reorg_seconds
    }

    /// Ingest merges recorded.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Total bytes rewritten across recorded ingest merges.
    pub fn merge_bytes(&self) -> u64 {
        self.merge_bytes
    }

    /// Total ingest-merge wall-clock seconds.
    pub fn merge_seconds(&self) -> f64 {
        self.merge_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_totals() {
        let mut l = CostLedger::new();
        l.add_query(0.5);
        l.add_query(0.25);
        l.add_reorg(80.0);
        assert_eq!(l.queries, 2);
        assert_eq!(l.switches, 1);
        assert!((l.total() - 80.75).abs() < 1e-12);
        assert!((l.mean_query_cost() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_mean_is_zero() {
        assert_eq!(CostLedger::new().mean_query_cost(), 0.0);
    }

    #[test]
    fn alpha_estimator_needs_both_sides() {
        let mut a = AlphaEstimator::new(2_000_000);
        assert_eq!(a.alpha(), None);
        assert_eq!(a.full_scan_seconds(), None);
        a.record_scan(1_000_000, 0.01); // 100 MB/s → full scan 0.02 s
        assert_eq!(a.alpha(), None, "no reorg recorded yet");
        assert!((a.full_scan_seconds().unwrap() - 0.02).abs() < 1e-12);
        a.record_reorg(2_000_000, 1.0);
        a.record_reorg(2_000_000, 3.0); // mean 2.0 s
        assert!((a.alpha().unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(a.reorgs(), 2);
        assert_eq!(a.mean_reorg_bytes(), Some(2_000_000.0));
    }

    #[test]
    fn cold_scans_dominate_alpha_when_present() {
        let mut a = AlphaEstimator::new(1_000_000);
        // warm: 1 GB/s; cold: 100 MB/s — a 10x temperature gap
        a.record_scan(1_000_000, 0.001);
        a.record_cold_scan(1_000_000, 0.01);
        a.record_reorg(1_000_000, 1.0);
        // denominator uses the cold throughput: full scan = 0.01 s → α = 100
        assert!((a.alpha().unwrap() - 100.0).abs() < 1e-9);
        assert!((a.alpha_cold().unwrap() - 100.0).abs() < 1e-9);
        // the warm reading is 10x larger (scan looks 10x cheaper)
        assert!((a.alpha_warm().unwrap() - 1000.0).abs() < 1e-9);
        assert_eq!(a.scans(), 2);
        assert_eq!(a.cold_scans(), 1);
        assert_eq!(a.scan_bytes(), 2_000_000);
    }

    #[test]
    fn warm_only_runs_fall_back_to_combined_throughput() {
        let mut a = AlphaEstimator::new(1_000_000);
        a.record_scan(500_000, 0.005); // 100 MB/s
        a.record_reorg(1_000_000, 0.8);
        assert!((a.alpha().unwrap() - 80.0).abs() < 1e-6);
        assert_eq!(a.alpha_cold(), None, "no cold samples");
        assert!((a.alpha_warm().unwrap() - 80.0).abs() < 1e-6);
    }

    #[test]
    fn alpha_estimator_ignores_zero_byte_scans() {
        let mut a = AlphaEstimator::new(1_000);
        a.record_scan(0, 0.5); // fully pruned queries calibrate nothing
        assert_eq!(a.scan_bytes_per_second(), None);
        assert_eq!(a.scans(), 1);
    }

    #[test]
    fn replay_reproduces_ledger_ops_in_order() {
        let mut live = CostLedger::new();
        let mut events = Vec::new();
        let costs = [0.125, 0.3, 0.0625, 0.7, 0.01];
        for (i, &c) in costs.iter().enumerate() {
            if i == 2 {
                live.add_reorg(80.0);
                events.push(Event {
                    seq: events.len() as u64,
                    at_us: 0,
                    kind: EventKind::SwitchDecided {
                        stream_seq: i as u64,
                        from: 0,
                        target: 1,
                        alpha: 80.0,
                        pending: 1,
                    },
                });
            }
            live.add_query(c);
            events.push(Event {
                seq: events.len() as u64,
                at_us: 0,
                kind: EventKind::QueryObserved {
                    stream_seq: i as u64,
                    service_cost: c,
                    physical: 0,
                    logical: 0,
                    counter: 0.0,
                },
            });
        }
        assert_eq!(CostLedger::replay(&events), live);
    }

    #[test]
    fn record_reorgs_matches_repeated_record_reorg() {
        let mut one_by_one = AlphaEstimator::new(1_000_000);
        one_by_one.record_scan(500_000, 0.005);
        one_by_one.record_reorg(1_000_000, 0.5);
        one_by_one.record_reorg(1_000_000, 1.5);
        let mut bulk = AlphaEstimator::new(1_000_000);
        bulk.record_scan(500_000, 0.005);
        bulk.record_reorgs(2_000_000, 2.0, 2);
        assert_eq!(one_by_one, bulk);
        // count == 0 records nothing
        bulk.record_reorgs(999, 9.9, 0);
        assert_eq!(one_by_one, bulk);
    }

    #[test]
    fn compaction_charges_enter_the_total_and_replay() {
        let mut live = CostLedger::new();
        live.add_query(0.5);
        live.add_compaction(0.125);
        live.add_compaction(0.25);
        assert_eq!(live.compactions, 2);
        assert!((live.total() - 0.875).abs() < 1e-12);
        let events = vec![
            Event {
                seq: 0,
                at_us: 0,
                kind: EventKind::QueryObserved {
                    stream_seq: 0,
                    service_cost: 0.5,
                    physical: 0,
                    logical: 0,
                    counter: 0.0,
                },
            },
            Event {
                seq: 1,
                at_us: 0,
                kind: EventKind::CompactionCharged {
                    stream_seq: 1,
                    rows_written: 100,
                    cost: 0.125,
                },
            },
            Event {
                seq: 2,
                at_us: 0,
                kind: EventKind::CompactionCharged {
                    stream_seq: 1,
                    rows_written: 200,
                    cost: 0.25,
                },
            },
        ];
        assert_eq!(CostLedger::replay(&events), live);
        // a read-only ledger stays bit-identical to the pre-ingestion shape
        let read_only = CostLedger::new();
        assert_eq!(read_only.compaction_cost, 0.0);
        assert_eq!(read_only.total(), 0.0);
    }

    #[test]
    fn merge_samples_stay_out_of_alpha() {
        let mut a = AlphaEstimator::new(1_000_000);
        a.record_scan(500_000, 0.005);
        a.record_reorg(1_000_000, 0.8);
        let alpha_before = a.alpha().unwrap();
        a.record_merge(250_000, 0.1);
        a.record_merge(250_000, 0.1);
        assert_eq!(a.alpha().unwrap(), alpha_before, "α keeps Table I meaning");
        assert_eq!(a.merges(), 2);
        assert_eq!(a.merge_bytes(), 500_000);
        assert!((a.merge_seconds() - 0.2).abs() < 1e-12);
        assert!((a.mean_merge_fraction().unwrap() - 0.25).abs() < 1e-12);
        // bulk form matches one-by-one
        let mut bulk = AlphaEstimator::new(1_000_000);
        bulk.record_scan(500_000, 0.005);
        bulk.record_reorg(1_000_000, 0.8);
        bulk.record_merges(500_000, 0.2, 2);
        assert_eq!(a, bulk);
        bulk.record_merges(9, 9.9, 0);
        assert_eq!(a, bulk);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CostLedger::new();
        a.add_query(1.0);
        let mut b = CostLedger::new();
        b.add_query(0.5);
        b.add_reorg(10.0);
        a.merge(&b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.switches, 1);
        assert!((a.total() - 11.5).abs() < 1e-12);
    }
}
