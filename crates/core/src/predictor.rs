//! Transition distributions for the REORGANIZER (§IV-C, Theorem IV.2).
//!
//! When the current state's counter fills, the algorithm jumps to another
//! active state. Uniform jumps give the classic `2H(n)` ratio; a predictor
//! that biases jumps toward states that performed well in the *last phase*
//! provably improves the ratio (`O(log_{1/(1−β)} n)` when the predictor
//! lands in the top-β fraction of ranks in expectation).
//!
//! The concrete predictor from the paper: weight each state by the average
//! fraction of data it *skipped* during the last phase and jump with
//! probability `w^γ / Σ w^γ`. `γ = 0` recovers the uniform distribution.

use rand::Rng;

/// How the reorganizer picks the next state among active candidates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TransitionPolicy {
    /// Uniform over active states (the classic BLS algorithm).
    Uniform,
    /// Weight states by `w^γ` where `w` is last-phase average skipped
    /// fraction (§IV-C). `gamma = 0.0` degenerates to `Uniform`.
    SkippedWeighted {
        /// The weighting exponent; higher values favor historically
        /// well-skipping states more aggressively.
        gamma: f64,
    },
}

impl TransitionPolicy {
    /// Paper default: γ = 1.
    pub fn default_biased() -> Self {
        TransitionPolicy::SkippedWeighted { gamma: 1.0 }
    }

    /// Sample an index into `candidates` given their weights.
    ///
    /// `weights[i]` is the last-phase skipped fraction of `candidates[i]`
    /// (in `[0, 1]`). Degenerate weight vectors (all zero, NaN…) fall back
    /// to uniform.
    pub fn sample(&self, weights: &[f64], rng: &mut impl Rng) -> usize {
        assert!(!weights.is_empty(), "no candidates to transition to");
        match self {
            TransitionPolicy::Uniform => rng.random_range(0..weights.len()),
            TransitionPolicy::SkippedWeighted { gamma } => {
                if *gamma == 0.0 {
                    return rng.random_range(0..weights.len());
                }
                let powered: Vec<f64> = weights
                    .iter()
                    .map(|w| {
                        let w = w.clamp(0.0, 1.0);
                        w.powf(*gamma)
                    })
                    .collect();
                let total: f64 = powered.iter().sum();
                if total <= 0.0 || total.is_nan() || total.is_infinite() {
                    return rng.random_range(0..weights.len());
                }
                let mut draw = rng.random::<f64>() * total;
                for (i, p) in powered.iter().enumerate() {
                    draw -= p;
                    if draw <= 0.0 {
                        return i;
                    }
                }
                powered.len() - 1 // numerical tail
            }
        }
    }
}

/// Median of a slice (used to seed weights/counters of states admitted
/// mid-phase, §IV-C). Returns `default` for an empty slice.
pub fn median_or(values: &[f64], default: f64) -> f64 {
    if values.is_empty() {
        return default;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(policy: TransitionPolicy, weights: &[f64], draws: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[policy.sample(weights, &mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let f = frequencies(TransitionPolicy::Uniform, &[0.9, 0.1, 0.5], 30_000);
        for p in f {
            assert!((p - 1.0 / 3.0).abs() < 0.02, "p = {p}");
        }
    }

    #[test]
    fn gamma_zero_equals_uniform() {
        let f = frequencies(
            TransitionPolicy::SkippedWeighted { gamma: 0.0 },
            &[0.9, 0.1],
            30_000,
        );
        assert!((f[0] - 0.5).abs() < 0.02);
    }

    #[test]
    fn gamma_one_is_proportional() {
        let f = frequencies(
            TransitionPolicy::SkippedWeighted { gamma: 1.0 },
            &[0.8, 0.2],
            40_000,
        );
        assert!((f[0] - 0.8).abs() < 0.02, "f0 = {}", f[0]);
        assert!((f[1] - 0.2).abs() < 0.02, "f1 = {}", f[1]);
    }

    #[test]
    fn larger_gamma_sharpens() {
        let f1 = frequencies(
            TransitionPolicy::SkippedWeighted { gamma: 1.0 },
            &[0.6, 0.4],
            40_000,
        );
        let f3 = frequencies(
            TransitionPolicy::SkippedWeighted { gamma: 3.0 },
            &[0.6, 0.4],
            40_000,
        );
        assert!(f3[0] > f1[0], "γ=3 should favor the better state more");
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let f = frequencies(
            TransitionPolicy::SkippedWeighted { gamma: 2.0 },
            &[0.0, 0.0, 0.0],
            30_000,
        );
        for p in f {
            assert!((p - 1.0 / 3.0).abs() < 0.02);
        }
    }

    #[test]
    fn median_cases() {
        assert_eq!(median_or(&[], 0.7), 0.7);
        assert_eq!(median_or(&[3.0], 0.0), 3.0);
        assert_eq!(median_or(&[1.0, 3.0], 0.0), 2.0);
        assert_eq!(median_or(&[5.0, 1.0, 3.0], 0.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        TransitionPolicy::Uniform.sample(&[], &mut rng);
    }
}
