//! Framework-level configuration. Defaults reproduce the paper's §VI-A3
//! experimental setup.

use crate::layout_manager::{CandidateSource, ManagerConfig};
use crate::predictor::TransitionPolicy;
use serde::{Deserialize, Serialize};

/// All OREO knobs in one place.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OreoConfig {
    /// Relative reorganization cost α (default 80 — the paper's measured
    /// default; Table I measures 60–100× on our substrate too).
    pub alpha: f64,
    /// Admission distance threshold ε (default 0.08).
    pub epsilon: f64,
    /// Transition-bias exponent γ (default 1; 0 = uniform).
    pub gamma: f64,
    /// Sliding-window length (default 200 queries).
    pub window: usize,
    /// Candidate generation period in queries (default = window).
    pub generation_interval: u64,
    /// Target partition count per layout.
    pub partitions: usize,
    /// Rows in the data sample used for layout generation (the paper uses
    /// 0.1–1% of the table).
    pub data_sample_rows: usize,
    /// R-TBS admission-sample capacity.
    pub rtbs_capacity: usize,
    /// R-TBS decay λ.
    pub rtbs_lambda: f64,
    /// Workload-sample source for candidate generation (SW/RS/Both).
    pub candidate_source: CandidateSourceConfig,
    /// Optional cap on the dynamic state-space size.
    pub max_states: Option<usize>,
    /// Stay in the current state on phase reset (§IV-A optimization).
    pub stay_on_reset: bool,
    /// §IV-C: admit states added mid-phase into the current phase with a
    /// median-initialized counter (instead of deferring them to the next
    /// phase), so freshly generated layouts are immediately switchable-to.
    pub mid_phase_admission: bool,
    /// §IV-C: use a sample-based predictor `p(s, S_A)` for jump draws —
    /// transition scores are the fraction of data each state skips on the
    /// manager's R-TBS query sample, refreshed every generation round.
    /// When `false`, jumps use last-phase weights only.
    pub sample_predictor: bool,
    /// Reorganization delay Δ in queries: the physical layout switch takes
    /// effect this many queries after the decision (§VI-D5).
    pub reorg_delay: u64,
    /// Master RNG seed.
    pub seed: u64,
}

/// Serializable mirror of [`CandidateSource`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateSourceConfig {
    /// Candidates from the sliding window only.
    SlidingWindow,
    /// Candidates from the uniform reservoir only.
    Reservoir,
    /// Candidates from both sources (§VI-D4 SW+RS ablation).
    Both,
}

impl From<CandidateSourceConfig> for CandidateSource {
    fn from(c: CandidateSourceConfig) -> Self {
        match c {
            CandidateSourceConfig::SlidingWindow => CandidateSource::SlidingWindow,
            CandidateSourceConfig::Reservoir => CandidateSource::Reservoir,
            CandidateSourceConfig::Both => CandidateSource::Both,
        }
    }
}

impl Default for OreoConfig {
    fn default() -> Self {
        Self {
            alpha: 80.0,
            epsilon: 0.08,
            gamma: 1.0,
            window: 200,
            generation_interval: 200,
            partitions: 32,
            data_sample_rows: 2000,
            rtbs_capacity: 64,
            rtbs_lambda: 0.005,
            candidate_source: CandidateSourceConfig::SlidingWindow,
            max_states: None,
            stay_on_reset: true,
            mid_phase_admission: true,
            sample_predictor: true,
            reorg_delay: 0,
            seed: 0,
        }
    }
}

impl OreoConfig {
    /// The transition policy implied by γ.
    pub fn transition_policy(&self) -> TransitionPolicy {
        if self.gamma == 0.0 {
            TransitionPolicy::Uniform
        } else {
            TransitionPolicy::SkippedWeighted { gamma: self.gamma }
        }
    }

    /// Derive the layout-manager slice of the configuration.
    pub fn manager_config(&self) -> ManagerConfig {
        ManagerConfig {
            epsilon: self.epsilon,
            window: self.window,
            generation_interval: self.generation_interval,
            reservoir_capacity: self.window,
            rtbs_capacity: self.rtbs_capacity,
            rtbs_lambda: self.rtbs_lambda,
            source: self.candidate_source.into(),
            max_states: self.max_states,
            // decorrelate manager sampling from reorganizer transitions
            seed: self.seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
        }
    }

    /// Builder-style setters for the common sweep parameters.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the admission threshold ε.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the transition-weighting exponent γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Sets the master RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the reorganization delay Δ in queries.
    pub fn with_delay(mut self, delay: u64) -> Self {
        self.reorg_delay = delay;
        self
    }

    /// Sets the partition count k.
    pub fn with_partitions(mut self, k: usize) -> Self {
        self.partitions = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = OreoConfig::default();
        assert_eq!(c.alpha, 80.0);
        assert_eq!(c.epsilon, 0.08);
        assert_eq!(c.gamma, 1.0);
        assert_eq!(c.window, 200);
        assert_eq!(c.reorg_delay, 0);
        assert_eq!(c.candidate_source, CandidateSourceConfig::SlidingWindow);
    }

    #[test]
    fn gamma_zero_is_uniform_policy() {
        let c = OreoConfig::default().with_gamma(0.0);
        assert_eq!(c.transition_policy(), TransitionPolicy::Uniform);
    }

    #[test]
    fn builders_chain() {
        let c = OreoConfig::default()
            .with_alpha(10.0)
            .with_epsilon(0.2)
            .with_seed(9)
            .with_delay(40)
            .with_partitions(16);
        assert_eq!(c.alpha, 10.0);
        assert_eq!(c.epsilon, 0.2);
        assert_eq!(c.seed, 9);
        assert_eq!(c.reorg_delay, 40);
        assert_eq!(c.partitions, 16);
    }

    #[test]
    fn manager_seed_decorrelated() {
        let c = OreoConfig::default().with_seed(5);
        assert_ne!(c.manager_config().seed, 5);
    }
}
