//! # oreo-core
//!
//! The paper's primary contribution: an online reorganization framework with
//! a worst-case guarantee, built from
//!
//! * [`mts`] — the classic Borodin–Linial–Saks counter algorithm for uniform
//!   metrical task systems (Algorithms 1–3);
//! * [`dumts`] — **D-UMTS**, the dynamic-state-space extension (Algorithm 4)
//!   achieving the asymptotically tight `2·H(|S_max|)` competitive ratio of
//!   Theorem IV.1;
//! * [`predictor`] — γ-biased transition distributions (§IV-C, Theorem IV.2);
//! * [`layout_manager`] — the LAYOUT MANAGER: candidate generation from
//!   workload samples and ε-distance admission (Algorithm 5);
//! * [`oreo`] — the assembled framework (Fig. 1) wiring both components to a
//!   table, with reorganization-delay modeling and cost accounting.

pub mod asymmetric;
pub mod config;
pub mod cost;
pub mod dumts;
pub mod layout_manager;
pub mod mts;
pub mod multi_copy;
pub mod multi_table;
pub mod oreo;
pub mod predictor;

pub use asymmetric::TwoStateAsymmetric;
pub use config::{CandidateSourceConfig, OreoConfig};
pub use cost::{AlphaEstimator, CostLedger};
pub use dumts::{Dumts, DumtsConfig, StateId, StepOutcome};
pub use layout_manager::{
    CandidateSource, LayoutManager, ManagedLayout, ManagerConfig, ManagerEvent, ManagerStats,
};
pub use mts::Bls;
pub use multi_copy::MultiCopyCache;
pub use multi_table::{MultiTableOreo, TableQuery};
pub use oreo::{Oreo, StepReport};
pub use predictor::{median_or, TransitionPolicy};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Structural invariants of D-UMTS under arbitrary cost streams and
        /// dynamic state churn: the current state exists, active counters
        /// stay below α, and |S_max| is monotone.
        #[test]
        fn dumts_invariants(
            seed in 0u64..1000,
            alpha in 1.0f64..20.0,
            steps in 1usize..300,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut d = Dumts::new(&[0, 1, 2], DumtsConfig {
                alpha,
                transition: TransitionPolicy::default_biased(),
                stay_on_reset: true,
                mid_phase_admission: false,
                seed,
            });
            let mut next_state = 3u64;
            let mut max_seen = d.max_states_seen();
            for _ in 0..steps {
                let action: u8 = rng.random_range(0..10);
                match action {
                    0 => {
                        d.add_state(next_state);
                        next_state += 1;
                    }
                    1 => {
                        let removable: Vec<_> = d
                            .states()
                            .into_iter()
                            .filter(|&s| s != d.current())
                            .collect();
                        if d.states().len() > 1 {
                            if let Some(&victim) = removable.first() {
                                d.remove_state(victim);
                            }
                        }
                    }
                    _ => {
                        let base: f64 = rng.random();
                        d.observe_query(|s| ((s as f64 * 0.37 + base) % 1.0).abs());
                    }
                }
                prop_assert!(d.states().contains(&d.current()));
                for s in d.active_states() {
                    prop_assert!(d.counter(s).unwrap() < alpha);
                }
                prop_assert!(d.max_states_seen() >= max_seen);
                max_seen = d.max_states_seen();
                prop_assert!(!d.active_states().is_empty() || d.states().len() == 1);
            }
        }

        /// Reorg cost equals switches × α in the framework ledger under any
        /// α and delay.
        #[test]
        fn ledger_consistency(alpha in 1.0f64..10.0, delay in 0u64..30, seed in 0u64..20) {
            use oreo_layout::{QdTreeGenerator, RangeLayout};
            use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};
            use oreo_storage::TableBuilder;
            use std::sync::Arc;

            let schema = Arc::new(Schema::from_pairs([
                ("ts", ColumnType::Timestamp),
                ("v", ColumnType::Int),
            ]));
            let mut b = TableBuilder::new(Arc::clone(&schema));
            for i in 0..800i64 {
                b.push_row(&[Scalar::Int(i), Scalar::Int((i * 11) % 500)]);
            }
            let table = Arc::new(b.finish());
            let config = OreoConfig {
                alpha,
                window: 25,
                generation_interval: 25,
                partitions: 8,
                data_sample_rows: 300,
                reorg_delay: delay,
                seed,
                ..Default::default()
            };
            let initial = Arc::new(RangeLayout::from_sample(&table, 0, 8));
            let mut oreo = Oreo::new(
                Arc::clone(&table),
                initial,
                Arc::new(QdTreeGenerator::new()),
                config,
            );
            for i in 0..150i64 {
                let q = QueryBuilder::new(table.schema())
                    .between("v", (i * 13) % 400, (i * 13) % 400 + 50)
                    .build();
                oreo.observe(&q);
            }
            let l = oreo.ledger();
            prop_assert!((l.reorg_cost - l.switches as f64 * alpha).abs() < 1e-9);
            prop_assert_eq!(l.queries, 150);
            prop_assert!(l.query_cost <= 150.0 + 1e-9);
        }
    }
}
