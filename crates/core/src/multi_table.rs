//! Multi-table deployments (§VIII, first future-work item):
//!
//! > "each table can maintain its own instance of OREO and make decisions
//! > based on a subset of query predicates relevant to the table."
//!
//! [`MultiTableOreo`] is exactly that coordinator: one [`Oreo`] instance
//! per table, queries routed by table name, costs aggregated across
//! instances. Join-induced predicates (Appendix B's multi-table layouts)
//! can be modeled by issuing the induced single-table predicates to each
//! touched table as separate [`TableQuery`]s.

use crate::config::OreoConfig;
use crate::cost::CostLedger;
use crate::oreo::{Oreo, StepReport};
use oreo_layout::{LayoutGenerator, SharedSpec};
use oreo_query::Query;
use oreo_storage::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A query addressed to one table of a multi-table deployment.
#[derive(Clone, Debug)]
pub struct TableQuery {
    /// Target table name.
    pub table: String,
    /// The query itself.
    pub query: Query,
}

impl TableQuery {
    /// Addresses `query` to the table called `table`.
    pub fn new(table: impl Into<String>, query: Query) -> Self {
        Self {
            table: table.into(),
            query,
        }
    }
}

/// Per-table OREO instances behind one observe() entry point.
pub struct MultiTableOreo {
    instances: BTreeMap<String, Oreo>,
}

impl MultiTableOreo {
    /// An empty deployment with no registered tables.
    pub fn new() -> Self {
        Self {
            instances: BTreeMap::new(),
        }
    }

    /// Register a table with its initial layout, candidate generator and
    /// configuration. Replaces any previous registration of the same name.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        table: Arc<Table>,
        initial_spec: SharedSpec,
        generator: Arc<dyn LayoutGenerator>,
        config: OreoConfig,
    ) {
        self.instances.insert(
            name.into(),
            Oreo::new(table, initial_spec, generator, config),
        );
    }

    /// Names of the registered tables, in sorted order.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.instances.keys().map(String::as_str)
    }

    /// The OREO instance managing `table`, if registered.
    pub fn instance(&self, table: &str) -> Option<&Oreo> {
        self.instances.get(table)
    }

    /// Mutable access to the OREO instance managing `table`, if registered.
    ///
    /// This is the serving engine's seam: per-tenant bookkeeping
    /// (`decide`/`settle`/`apply_due`, compaction charges, switch
    /// completion) flows through the tenant's own instance while the
    /// coordinator keeps the fleet behind one lock.
    pub fn instance_mut(&mut self, table: &str) -> Option<&mut Oreo> {
        self.instances.get_mut(table)
    }

    /// Route one query to its table's instance.
    ///
    /// # Panics
    /// Panics on an unregistered table — queries against unknown tables are
    /// a wiring error, not a runtime condition.
    pub fn observe(&mut self, tq: &TableQuery) -> StepReport {
        let instance = self
            .instances
            .get_mut(&tq.table)
            .unwrap_or_else(|| panic!("unregistered table {:?}", tq.table));
        instance.observe(&tq.query)
    }

    /// Aggregate ledger across all tables (the bill the user pays).
    pub fn total_ledger(&self) -> CostLedger {
        let mut total = CostLedger::new();
        for oreo in self.instances.values() {
            total.merge(oreo.ledger());
        }
        total
    }

    /// Per-table ledgers for reporting.
    pub fn ledgers(&self) -> BTreeMap<String, CostLedger> {
        self.instances
            .iter()
            .map(|(name, oreo)| (name.clone(), *oreo.ledger()))
            .collect()
    }
}

impl Default for MultiTableOreo {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oreo_layout::{QdTreeGenerator, RangeLayout};
    use oreo_query::{ColumnType, QueryBuilder, Scalar, Schema};
    use oreo_storage::TableBuilder;

    fn table(kind: u8, n: i64) -> Arc<Table> {
        let schema = Arc::new(Schema::from_pairs([
            ("ts", ColumnType::Timestamp),
            ("v", ColumnType::Int),
        ]));
        let mut b = TableBuilder::new(Arc::clone(&schema));
        for i in 0..n {
            b.push_row(&[Scalar::Int(i), Scalar::Int((i * (7 + kind as i64)) % 500)]);
        }
        Arc::new(b.finish())
    }

    fn registered(m: &mut MultiTableOreo, name: &str, kind: u8) -> Arc<Table> {
        let t = table(kind, 2_000);
        let config = OreoConfig {
            alpha: 10.0,
            window: 50,
            generation_interval: 50,
            partitions: 8,
            data_sample_rows: 500,
            seed: kind as u64,
            ..Default::default()
        };
        let initial = Arc::new(RangeLayout::from_sample(&t, 0, 8));
        m.register(
            name,
            Arc::clone(&t),
            initial,
            Arc::new(QdTreeGenerator::new()),
            config,
        );
        t
    }

    #[test]
    fn per_table_instances_evolve_independently() {
        let mut m = MultiTableOreo::new();
        let orders = registered(&mut m, "orders", 0);
        let events = registered(&mut m, "events", 1);
        assert_eq!(m.tables().collect::<Vec<_>>(), vec!["events", "orders"]);

        // orders gets a drifting v-workload; events gets only ts scans
        for i in 0..400i64 {
            let q = QueryBuilder::new(orders.schema())
                .between("v", (i * 11) % 400, (i * 11) % 400 + 60)
                .build();
            m.observe(&TableQuery::new("orders", q));
            let q = QueryBuilder::new(events.schema())
                .between("ts", (i * 3) % 1500, (i * 3) % 1500 + 100)
                .build();
            m.observe(&TableQuery::new("events", q));
        }

        let ledgers = m.ledgers();
        assert_eq!(ledgers["orders"].queries, 400);
        assert_eq!(ledgers["events"].queries, 400);
        // events' default time layout already fits its workload → no need
        // to reorganize; orders should have adapted
        assert!(
            ledgers["events"].switches == 0,
            "time-sorted table should stay put"
        );
        assert!(
            ledgers["orders"].mean_query_cost() < 1.0,
            "orders never improved"
        );

        let total = m.total_ledger();
        assert_eq!(total.queries, 800);
        assert!(
            (total.total() - (ledgers["orders"].total() + ledgers["events"].total())).abs() < 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "unregistered table")]
    fn unknown_table_is_a_wiring_error() {
        let mut m = MultiTableOreo::new();
        m.observe(&TableQuery::new("nope", Query::full_scan()));
    }
}
