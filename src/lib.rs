//! # OREO — Online Re-organization Optimizer
//!
//! A from-scratch Rust reproduction of *“Dynamic Data Layout Optimization
//! with Worst-case Guarantees”* (ICDE 2024): an online algorithmic framework
//! that decides **when** to reorganize a partitioned dataset and **which**
//! data layout to switch to, minimizing combined query + reorganization
//! cost over an unknown query stream with a provably tight
//! `2·H(|S_max|)` competitive ratio (a dynamic variant of uniform metrical
//! task systems).
//!
//! This crate is a facade re-exporting the workspace's subsystems:
//!
//! * [`query`] — predicates, schemas, queries;
//! * [`storage`] — partitioned columnar tables, metadata, data skipping,
//!   and an on-disk store with physical reorganization;
//! * [`sampling`] — sliding windows, reservoirs, R-TBS;
//! * [`layout`] — Range / Z-order / Qd-tree layout generation;
//! * [`core`] — the D-UMTS reorganizer, layout manager, and the assembled
//!   [`core::Oreo`] framework;
//! * [`workload`] — TPC-H/TPC-DS/telemetry-shaped datasets and drifting
//!   query streams;
//! * [`sim`] — the evaluation harness with every baseline from the paper;
//! * [`engine`] — the concurrent serving layer: multi-threaded
//!   snapshot-isolated scans with non-blocking background reorganization
//!   (the paper's Δ as a measured window);
//! * [`obs`] — live observability: the lock-free metrics registry,
//!   streaming log-bucketed histograms, the bounded structured event
//!   journal (policy decision trace), and the JSON/Prometheus exporters.
//!
//! ## Quickstart
//!
//! ```
//! use oreo::prelude::*;
//! use std::sync::Arc;
//!
//! // a dataset + workload shaped after the paper's TPC-H setting
//! let bundle = oreo::workload::tpch_bundle(5_000, 42);
//! let stream = bundle.stream(StreamConfig {
//!     total_queries: 600,
//!     segments: 3,
//!     seed: 7,
//!     ..Default::default()
//! });
//!
//! // OREO: start on the default arrival-order layout, generate Qd-tree
//! // candidates on the fly, let D-UMTS decide when to switch
//! let config = OreoConfig {
//!     alpha: 30.0,
//!     partitions: 16,
//!     data_sample_rows: 1_000,
//!     window: 100,
//!     generation_interval: 100,
//!     ..Default::default()
//! };
//! let initial = oreo::sim::default_spec(&bundle, config.partitions, 0);
//! let mut oreo = Oreo::new(
//!     Arc::clone(&bundle.table),
//!     initial,
//!     Arc::new(QdTreeGenerator::new()),
//!     config,
//! );
//! for q in &stream.queries {
//!     oreo.observe(q);
//! }
//! let ledger = oreo.ledger();
//! assert_eq!(ledger.queries, 600);
//! assert!(ledger.total() > 0.0);
//! ```

pub use oreo_core as core;
pub use oreo_engine as engine;
pub use oreo_layout as layout;
pub use oreo_obs as obs;
pub use oreo_query as query;
pub use oreo_sampling as sampling;
pub use oreo_sim as sim;
pub use oreo_storage as storage;
pub use oreo_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use oreo_core::{CostLedger, Dumts, DumtsConfig, Oreo, OreoConfig, TransitionPolicy};
    pub use oreo_engine::{
        DelaySemantics, Engine, EngineConfig, EngineStats, ReorgBudget, TenantSpec, TenantStats,
    };
    pub use oreo_layout::{
        LayoutGenerator, LayoutSpec, QdTreeGenerator, RangeGenerator, RangeLayout, ZOrderGenerator,
    };
    pub use oreo_query::{ColumnType, Predicate, Query, QueryBuilder, Scalar, Schema};
    pub use oreo_storage::{
        DiskStore, LayoutModel, SnapshotCell, Table, TableBuilder, TableSnapshot,
    };
    pub use oreo_workload::{DatasetBundle, StreamConfig};
}
